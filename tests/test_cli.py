"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, _parse_size, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_parse_size():
    assert _parse_size("4") == 4
    assert _parse_size("16K") == 16 << 10
    assert _parse_size("1M") == 1 << 20
    assert _parse_size("2m") == 2 << 20


def test_info():
    code, text = run_cli("info")
    assert code == 0
    assert "total cores" in text
    assert "64" in text


def test_experiments_listing():
    code, text = run_cli("experiments")
    assert code == 0
    for name in ("fig7a", "table1", "ext-racks"):
        assert name in text


def test_experiment_names_all_registered():
    # Every experiment in the registry is callable with no args.
    for fn in EXPERIMENTS.values():
        assert callable(fn)
        assert fn.__doc__


def test_osu_latency_command():
    code, text = run_cli("osu", "latency", "--size", "4K")
    assert code == 0
    assert "Latency (us)" in text
    assert "4K" in text


def test_osu_collective_command():
    code, text = run_cli("osu", "bcast", "--size", "64K", "--ranks", "32",
                         "--mode", "dvfs")
    assert code == 0
    assert "Avg latency" in text


def test_osu_bw_intra_node():
    code, text = run_cli("osu", "bw", "--size", "256K", "--intra-node")
    assert code == 0
    assert "Bandwidth" in text


def test_app_command():
    code, text = run_cli("app", "nas-is", "--ranks", "64", "--mode", "proposed")
    assert code == 0
    assert "energy (kJ)" in text
    assert "alltoall fraction" in text


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_unknown_experiment_rejected():
    code, text = run_cli("experiment", "fig99")
    assert code == 2
    assert "unknown experiment" in text


def test_experiment_name_zero_padding_accepted():
    from repro.cli import _canonical_experiment

    assert _canonical_experiment("fig07a") == "fig7a"
    assert _canonical_experiment("FIG7A") == "fig7a"
    assert _canonical_experiment("table01") == "table1"
    assert _canonical_experiment("fig99") is None


def test_experiment_trace_flag_writes_jsonl(tmp_path):
    import json

    trace = tmp_path / "t.jsonl"
    code, text = run_cli("experiment", "fig2c", "--trace", str(trace))
    assert code == 0
    assert "trace records" in text
    lines = trace.read_text().splitlines()
    assert lines
    first = json.loads(lines[0])
    assert "t" in first and "type" in first


def test_experiment_profile_flag_reports(capsys):
    code, text = run_cli("experiment", "fig2c", "--profile")
    assert code == 0
    assert "self-profile" in text
    assert "kernel events" in text


def test_governor_theta_must_be_positive():
    with pytest.raises(SystemExit, match="governor-theta"):
        run_cli(
            "osu", "alltoall", "--size", "4K",
            "--governor", "countdown", "--governor-theta", "-5",
        )


def test_fault_seed_requires_faults():
    with pytest.raises(SystemExit, match="--fault-seed requires --faults"):
        run_cli("osu", "latency", "--size", "4K", "--fault-seed", "3")


def test_fault_seed_must_be_non_negative():
    with pytest.raises(SystemExit, match="non-negative"):
        run_cli(
            "osu", "latency", "--size", "4K",
            "--faults", "noise", "--fault-seed", "-1",
        )


def test_bad_fault_spec_named_in_error():
    with pytest.raises(SystemExit, match="bad --faults spec.*cosmic"):
        run_cli("osu", "latency", "--size", "4K", "--faults", "cosmic:rays=1")


def test_faults_flag_end_to_end():
    code, text = run_cli(
        "osu", "alltoall", "--size", "16K",
        "--faults", "degrade:factor=0.5;noise:period=1ms,pulse=25us",
        "--fault-seed", "3",
    )
    assert code == 0
    assert "faults[seed=3]" in text
    assert "link events" in text


def test_faults_runs_are_reproducible():
    spec = ("osu", "alltoall", "--size", "16K",
            "--faults", "straggler:mult=1.4;jitter:lo=0.8,hi=1.2")
    _, a = run_cli(*spec)
    _, b = run_cli(*spec)
    assert a == b
