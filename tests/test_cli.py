"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, _parse_size, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_parse_size():
    assert _parse_size("4") == 4
    assert _parse_size("16K") == 16 << 10
    assert _parse_size("1M") == 1 << 20
    assert _parse_size("2m") == 2 << 20


def test_info():
    code, text = run_cli("info")
    assert code == 0
    assert "total cores" in text
    assert "64" in text


def test_experiments_listing():
    code, text = run_cli("experiments")
    assert code == 0
    for name in ("fig7a", "table1", "ext-racks"):
        assert name in text


def test_experiment_names_all_registered():
    # Every experiment in the registry is callable with no args.
    for fn in EXPERIMENTS.values():
        assert callable(fn)
        assert fn.__doc__


def test_osu_latency_command():
    code, text = run_cli("osu", "latency", "--size", "4K")
    assert code == 0
    assert "Latency (us)" in text
    assert "4K" in text


def test_osu_collective_command():
    code, text = run_cli("osu", "bcast", "--size", "64K", "--ranks", "32",
                         "--mode", "dvfs")
    assert code == 0
    assert "Avg latency" in text


def test_osu_bw_intra_node():
    code, text = run_cli("osu", "bw", "--size", "256K", "--intra-node")
    assert code == 0
    assert "Bandwidth" in text


def test_app_command():
    code, text = run_cli("app", "nas-is", "--ranks", "64", "--mode", "proposed")
    assert code == 0
    assert "energy (kJ)" in text
    assert "alltoall fraction" in text


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_unknown_experiment_rejected():
    code, text = run_cli("experiment", "fig99")
    assert code == 2
    assert "unknown experiment" in text


def test_experiment_name_zero_padding_accepted():
    from repro.cli import _canonical_experiment

    assert _canonical_experiment("fig07a") == "fig7a"
    assert _canonical_experiment("FIG7A") == "fig7a"
    assert _canonical_experiment("table01") == "table1"
    assert _canonical_experiment("fig99") is None


def test_experiment_trace_flag_writes_jsonl(tmp_path):
    import json

    trace = tmp_path / "t.jsonl"
    code, text = run_cli("experiment", "fig2c", "--trace", str(trace))
    assert code == 0
    assert "trace records" in text
    lines = trace.read_text().splitlines()
    assert lines
    first = json.loads(lines[0])
    assert "t" in first and "type" in first


def test_experiment_profile_flag_reports(capsys):
    code, text = run_cli("experiment", "fig2c", "--profile")
    assert code == 0
    assert "self-profile" in text
    assert "kernel events" in text
