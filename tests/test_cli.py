"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import EXPERIMENTS, _parse_size, build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_parse_size():
    assert _parse_size("4") == 4
    assert _parse_size("16K") == 16 << 10
    assert _parse_size("1M") == 1 << 20
    assert _parse_size("2m") == 2 << 20


def test_info():
    code, text = run_cli("info")
    assert code == 0
    assert "total cores" in text
    assert "64" in text


def test_experiments_listing():
    code, text = run_cli("experiments")
    assert code == 0
    for name in ("fig7a", "table1", "ext-racks"):
        assert name in text


def test_experiment_names_all_registered():
    # Every experiment in the registry is callable with no args.
    for fn in EXPERIMENTS.values():
        assert callable(fn)
        assert fn.__doc__


def test_osu_latency_command():
    code, text = run_cli("osu", "latency", "--size", "4K")
    assert code == 0
    assert "Latency (us)" in text
    assert "4K" in text


def test_osu_collective_command():
    code, text = run_cli("osu", "bcast", "--size", "64K", "--ranks", "32",
                         "--mode", "dvfs")
    assert code == 0
    assert "Avg latency" in text


def test_osu_bw_intra_node():
    code, text = run_cli("osu", "bw", "--size", "256K", "--intra-node")
    assert code == 0
    assert "Bandwidth" in text


def test_app_command():
    code, text = run_cli("app", "nas-is", "--ranks", "64", "--mode", "proposed")
    assert code == 0
    assert "energy (kJ)" in text
    assert "alltoall fraction" in text


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_unknown_experiment_rejected():
    code, text = run_cli("experiment", "fig99")
    assert code == 2
    assert "unknown experiment" in text


def test_experiment_name_zero_padding_accepted():
    from repro.cli import _canonical_experiment

    assert _canonical_experiment("fig07a") == "fig7a"
    assert _canonical_experiment("FIG7A") == "fig7a"
    assert _canonical_experiment("table01") == "table1"
    assert _canonical_experiment("fig99") is None


def test_experiment_trace_flag_writes_jsonl(tmp_path, monkeypatch):
    import json

    monkeypatch.chdir(tmp_path)
    trace = tmp_path / "t.jsonl"
    code, text = run_cli("experiment", "fig2c", "--trace", str(trace),
                         "--no-cache")
    assert code == 0
    assert "trace records" in text
    lines = trace.read_text().splitlines()
    assert lines
    first = json.loads(lines[0])
    assert "t" in first and "type" in first


def test_experiment_profile_flag_reports(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    code, text = run_cli("experiment", "fig2c", "--profile", "--no-cache")
    assert code == 0
    assert "self-profile" in text
    assert "kernel events" in text


def test_governor_theta_must_be_positive():
    with pytest.raises(SystemExit, match="governor-theta"):
        run_cli(
            "osu", "alltoall", "--size", "4K",
            "--governor", "countdown", "--governor-theta", "-5",
        )


def test_fault_seed_requires_faults():
    with pytest.raises(SystemExit, match="--fault-seed requires --faults"):
        run_cli("osu", "latency", "--size", "4K", "--fault-seed", "3")


def test_fault_seed_must_be_non_negative():
    with pytest.raises(SystemExit, match="non-negative"):
        run_cli(
            "osu", "latency", "--size", "4K",
            "--faults", "noise", "--fault-seed", "-1",
        )


def test_bad_fault_spec_named_in_error():
    with pytest.raises(SystemExit, match="bad --faults spec.*cosmic"):
        run_cli("osu", "latency", "--size", "4K", "--faults", "cosmic:rays=1")


def test_faults_flag_end_to_end():
    code, text = run_cli(
        "osu", "alltoall", "--size", "16K",
        "--faults", "degrade:factor=0.5;noise:period=1ms,pulse=25us",
        "--fault-seed", "3",
    )
    assert code == 0
    assert "faults[seed=3]" in text
    assert "link events" in text


def test_faults_runs_are_reproducible():
    spec = ("osu", "alltoall", "--size", "16K",
            "--faults", "straggler:mult=1.4;jitter:lo=0.8,hi=1.2")
    _, a = run_cli(*spec)
    _, b = run_cli(*spec)
    assert a == b


# -- power-budget arbiter flags ----------------------------------------------
def test_arbiter_requires_power_cap():
    with pytest.raises(SystemExit, match="--arbiter requires --power-cap"):
        run_cli("osu", "alltoall", "--size", "4K", "--arbiter", "redistribute")


def test_power_cap_must_be_positive():
    with pytest.raises(SystemExit, match="positive wattage"):
        run_cli("osu", "alltoall", "--size", "4K", "--power-cap", "-100")


def test_power_cap_end_to_end_prints_arbiter_summary():
    # 2000 W over the default 8-node testbed = 250 W/node: binding.
    code, text = run_cli(
        "osu", "alltoall", "--size", "16K", "--ranks", "16",
        "--power-cap", "2000", "--no-cache",
    )
    assert code == 0
    assert "arbiter[uniform @ 2000 W]" in text
    assert "freq changes" in text


# -- observability surface (repro.obs) ---------------------------------------
def test_metrics_flag_writes_snapshot(tmp_path, monkeypatch):
    import json

    monkeypatch.chdir(tmp_path)
    path = tmp_path / "metrics.json"
    code, text = run_cli(
        "osu", "alltoall", "--size", "16K", "--ranks", "8",
        "--metrics", str(path), "--no-cache",
    )
    assert code == 0
    assert f"metrics to {path}" in text
    snap = json.loads(path.read_text())
    assert set(snap) == {"counters", "gauges", "series"}
    assert snap["counters"]["net.flows_started"] > 0
    assert snap["gauges"]["sim.last_t"] > 0


def test_trace_survives_jobs_4(tmp_path, monkeypatch):
    """The satellite-1 regression: worker-side records must not be lost."""
    from repro.runner import clear_memo

    monkeypatch.chdir(tmp_path)
    counts = {}
    for jobs in ("1", "4"):
        clear_memo()
        path = tmp_path / f"trace-{jobs}.jsonl"
        code, _ = run_cli(
            "osu", "alltoall", "--size", "16K", "--ranks", "8",
            "--trace", str(path), "--jobs", jobs, "--no-cache",
        )
        assert code == 0
        counts[jobs] = path.read_text()
    assert counts["1"] == counts["4"]
    assert counts["1"].count("\n") > 0


def test_metrics_identical_across_jobs_and_cache(tmp_path, monkeypatch):
    import json

    from repro.runner import clear_memo

    monkeypatch.chdir(tmp_path)
    cache_dir = tmp_path / "cache"
    blobs = []
    for run, jobs in enumerate(("1", "4", "4")):  # third run = warm cache
        if run < 2:
            clear_memo()
        path = tmp_path / f"m{run}.json"
        code, _ = run_cli(
            "osu", "alltoall", "--size", "16K", "--ranks", "8",
            "--metrics", str(path), "--jobs", jobs,
            "--cache-dir", str(cache_dir),
        )
        assert code == 0
        blobs.append(path.read_bytes())
    assert blobs[0] == blobs[1] == blobs[2]


def test_trace_export_chrome(tmp_path, monkeypatch):
    import json

    monkeypatch.chdir(tmp_path)
    trace = tmp_path / "run.jsonl"
    code, _ = run_cli(
        "osu", "alltoall", "--size", "16K", "--ranks", "8",
        "--trace", str(trace), "--no-cache",
    )
    assert code == 0
    code, text = run_cli("trace-export", str(trace))
    assert code == 0
    assert "Chrome trace events" in text
    out = tmp_path / "run.chrome.json"
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    assert events
    body = [e for e in events if e["ph"] != "M"]
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts)  # monotonic Chrome timestamps
    assert {"X", "C"} <= {e["ph"] for e in body}


def test_trace_export_explicit_out_and_missing_file(tmp_path):
    code, text = run_cli("trace-export", str(tmp_path / "absent.jsonl"))
    assert code == 2
    assert "cannot export" in text

    src = tmp_path / "tiny.jsonl"
    src.write_text('{"t": 0.0, "type": "mark", "name": "x"}\n')
    dst = tmp_path / "custom.json"
    code, text = run_cli("trace-export", str(src), "--out", str(dst))
    assert code == 0
    assert dst.exists()


def test_bench_report_metrics_section(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, _ = run_cli(
        "osu", "alltoall", "--size", "16K", "--ranks", "8",
        "--metrics", str(tmp_path / "m.json"), "--no-cache",
    )
    assert code == 0
    code, text = run_cli("bench-report", "--metrics")
    assert code == 0
    assert "== metrics ==" in text
    assert "net.flows_started" in text


def test_bench_report_metrics_absent_hint(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, _ = run_cli("osu", "alltoall", "--size", "16K", "--ranks", "8",
                      "--no-cache")
    assert code == 0
    code, text = run_cli("bench-report", "--metrics")
    assert code == 0
    assert "no metrics in the last sweep" in text
