"""Quality gates on the public API surface: exports resolve, are
documented, and the package version is consistent."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.cluster",
    "repro.network",
    "repro.power",
    "repro.mpi",
    "repro.faults",
    "repro.runtime",
    "repro.collectives",
    "repro.models",
    "repro.apps",
    "repro.bench",
    "repro.microbench",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} must declare __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for symbol in module.__all__:
        obj = getattr(module, symbol)
        if callable(obj) and not isinstance(obj, type):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"
        elif isinstance(obj, type):
            assert obj.__doc__, f"class {name}.{symbol} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings_present(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


def test_version_attribute():
    import repro

    assert repro.__version__ == "0.1.0"


def test_no_circular_import_surprises():
    """Importing leaf modules directly works without the package facade."""
    for name in (
        "repro.collectives.power_alltoall",
        "repro.apps.kernels",
        "repro.models.fitting",
        "repro.validate",
        "repro.cli",
    ):
        importlib.import_module(name)
