"""Tests for the configuration validator."""

from repro.cluster import ClusterSpec, CpuSpec, NodeSpec
from repro.network import NetworkSpec
from repro.power import PowerModelParams
from repro.validate import Finding, is_valid, validate_configuration


def test_default_configuration_is_valid():
    findings = validate_configuration()
    assert is_valid(findings)
    assert not any(f.severity == "error" for f in findings)


def test_single_pstate_warns():
    cpu = CpuSpec(pstates_ghz=(2.4,))
    spec = ClusterSpec(node=NodeSpec(cpu=cpu))
    findings = validate_configuration(cluster=spec)
    assert any("single P-state" in f.message for f in findings)
    assert is_valid(findings)  # warning only


def test_huge_dvfs_latency_warns():
    cpu = CpuSpec(dvfs_latency_s=5e-3)
    findings = validate_configuration(cluster=ClusterSpec(node=NodeSpec(cpu=cpu)))
    assert any("Odvfs" in f.message for f in findings)


def test_non_two_socket_informs():
    spec = ClusterSpec(node=NodeSpec(sockets=4))
    findings = validate_configuration(cluster=spec)
    assert any("sockets/node" in f.message for f in findings)


def test_slow_shm_warns():
    net = NetworkSpec(shm_bw=1.0e9)
    findings = validate_configuration(network=net)
    assert any("shared-memory bandwidth" in f.message for f in findings)


def test_memory_below_pair_bandwidth_is_error():
    net = NetworkSpec(shm_bw=4.5e9, mem_bw_node=4.0e9)
    findings = validate_configuration(network=net)
    assert not is_valid(findings)


def test_weak_cpu_feed_warns():
    net = NetworkSpec(cpu_feed_bw=1.0e9)
    findings = validate_configuration(network=net)
    assert any("CPU feed" in f.message for f in findings)


def test_absurd_core_power_warns():
    power = PowerModelParams(core_idle_w=90.0, core_dyn_w_per_ghz3=5.0)
    findings = validate_configuration(power=power)
    assert any("per core" in f.message for f in findings)


def test_finding_str():
    f = Finding("warning", "something")
    assert str(f) == "[warning] something"


def test_cli_validate_command():
    import io

    from repro.cli import main

    out = io.StringIO()
    code = main(["validate"], out=out)
    assert code == 0
    assert "configuration OK" in out.getvalue()
