"""Tests for the application profile machinery."""

import pytest

from repro.apps import (
    CPMD_DATASETS,
    CollectiveCall,
    ComputeEvent,
    NAS_FT,
    NAS_IS,
    RankProfile,
    app_from_trace,
)


def test_collective_call_validation():
    with pytest.raises(ValueError):
        CollectiveCall("fft", 1024)  # unknown op
    with pytest.raises(ValueError):
        CollectiveCall("alltoall", -1)
    with pytest.raises(ValueError):
        CollectiveCall("alltoall", 1024, count=0)
    with pytest.raises(ValueError):
        CollectiveCall("alltoallv", 1024, skew=1.5)


def test_rank_profile_validation():
    call = (CollectiveCall("alltoall", 1024),)
    with pytest.raises(ValueError):
        RankProfile(64, iterations=2, sim_iterations=5,
                    compute_per_iter_s=1.0, calls_per_iter=call)
    with pytest.raises(ValueError):
        RankProfile(64, iterations=5, sim_iterations=2,
                    compute_per_iter_s=-1.0, calls_per_iter=call)


def test_profile_scale():
    p = RankProfile(64, iterations=20, sim_iterations=4,
                    compute_per_iter_s=1.0,
                    calls_per_iter=(CollectiveCall("alltoall", 1024),))
    assert p.scale == 5.0


def test_app_spec_lookup():
    assert NAS_FT.profile(32).ranks == 32
    assert NAS_FT.profile(64).ranks == 64
    with pytest.raises(ValueError):
        NAS_FT.profile(128)


def test_shipped_profiles_have_both_rank_counts():
    for app in (NAS_FT, NAS_IS, *CPMD_DATASETS):
        assert set(app.variants) == {32, 64}
        for n, p in app.variants.items():
            assert p.ranks == n
            assert p.sim_iterations <= p.iterations
            assert any(
                c.op.startswith("alltoall") for c in p.calls_per_iter
            ), f"{app.name} must be alltoall-dominated (paper §VII-F)"


def test_strong_scaling_profiles_shrink_messages():
    """More ranks → smaller per-pair alltoall messages (strong scaling)."""
    for app in (NAS_FT, *CPMD_DATASETS):
        m32 = next(
            c.nbytes for c in app.profile(32).calls_per_iter if c.op == "alltoall"
        )
        m64 = next(
            c.nbytes for c in app.profile(64).calls_per_iter if c.op == "alltoall"
        )
        assert m64 < m32


def test_app_from_trace_merges_compute():
    app = app_from_trace(
        "t", 64,
        [ComputeEvent(0.1), CollectiveCall("alltoall", 1024), ComputeEvent(0.2)],
        iterations=8,
    )
    p = app.profile(64)
    assert p.compute_per_iter_s == pytest.approx(0.3)
    assert len(p.calls_per_iter) == 1
    assert p.sim_iterations == 4


def test_app_from_trace_rejects_empty():
    with pytest.raises(ValueError):
        app_from_trace("t", 64, [], iterations=1)


def test_compute_event_validation():
    with pytest.raises(ValueError):
        ComputeEvent(-1.0)
