"""Tests for the first-principles NAS kernel generators."""

import pytest

from repro.apps import (
    FT_CLASSES,
    IS_CLASSES,
    ft_shape,
    is_shape,
    synthesize_ft,
    synthesize_is,
    run_app,
)
from repro.collectives import PowerMode


def test_ft_shape_class_c_matches_grid():
    shape = ft_shape("C", 64)
    assert shape.total_bytes == 512**3 * 16
    assert shape.alltoall_per_pair == 512**3 * 16 // (64 * 64)
    assert shape.iterations == 20


def test_ft_shape_case_insensitive():
    assert ft_shape("c", 64) == ft_shape("C", 64)


def test_ft_unknown_class_rejected():
    with pytest.raises(ValueError):
        ft_shape("Z", 64)
    with pytest.raises(ValueError):
        ft_shape("C", 0)


def test_ft_strong_scaling_halves_compute():
    s32 = ft_shape("C", 32)
    s64 = ft_shape("C", 64)
    assert s64.compute_per_iter_s == pytest.approx(s32.compute_per_iter_s / 2)
    assert s64.alltoall_per_pair == pytest.approx(s32.alltoall_per_pair / 4, rel=0.01)


def test_ft_class_ladder_monotone():
    sizes = [ft_shape(k, 64).total_bytes for k in ("S", "W", "A", "B", "C", "D")]
    assert sizes == sorted(sizes)


def test_is_shape_class_c():
    shape = is_shape("C", 64)
    assert shape.total_bytes == (1 << 27) * 4
    assert shape.iterations == 10


def test_is_unknown_class_rejected():
    with pytest.raises(ValueError):
        is_shape("Q", 64)


def test_synthetic_ft_class_c_near_paper_runtime():
    """The derived class-C profile should land near the Table II implied
    ~7.4 s at 64 ranks (within 2x — it is a first-principles estimate)."""
    app = synthesize_ft("C", 64, sim_iterations=2)
    r = run_app(app, 64)
    assert 4.0 < r.total_time_s < 15.0
    assert 0.1 < r.alltoall_fraction < 0.6


def test_synthetic_small_class_runs_fast_and_saves_energy():
    app = synthesize_ft("A", 32, sim_iterations=2)
    base = run_app(app, 32)
    prop = run_app(app, 32, PowerMode.PROPOSED)
    assert prop.energy_kj < base.energy_kj


def test_synthetic_is_runs():
    app = synthesize_is("A", 32, sim_iterations=2)
    r = run_app(app, 32)
    assert r.total_time_s > 0
    assert r.alltoall_time_s > 0


def test_generated_app_spec_shape():
    app = synthesize_ft("B", 64)
    profile = app.profile(64)
    assert profile.iterations == FT_CLASSES["B"][1]
    assert profile.sim_iterations <= profile.iterations
    app2 = synthesize_is("B", 64)
    assert app2.profile(64).iterations == IS_CLASSES["B"][1]
