"""Integration tests for application runs (kept small for speed: a tiny
synthetic app exercises the machinery; one NAS IS run checks the paper
numbers end-to-end)."""

import pytest

from repro.apps import (
    CollectiveCall,
    ComputeEvent,
    NAS_IS,
    app_from_trace,
    run_app,
)
from repro.collectives import PowerMode

TINY = app_from_trace(
    "tiny",
    16,
    [
        ComputeEvent(2e-3),
        CollectiveCall("alltoall", 64 << 10),
        CollectiveCall("allreduce", 1024),
    ],
    iterations=6,
    sim_iterations=2,
)


def test_run_app_extrapolates_linearly():
    r = run_app(TINY, 16)
    sim = r.sim
    assert r.total_time_s == pytest.approx(sim.duration_s * 3)
    assert r.energy_kj == pytest.approx(sim.energy_j * 3 / 1e3)


def test_run_app_tracks_alltoall_time():
    r = run_app(TINY, 16)
    assert 0 < r.alltoall_time_s < r.total_time_s
    assert 0 < r.alltoall_fraction < 1


def test_run_app_sizes_cluster_to_ranks():
    r = run_app(TINY, 16)
    assert r.sim.job.cluster.n_nodes == 2  # 16 ranks / 8 cores per node


def test_run_app_power_modes_ordering():
    energies = {}
    for mode in PowerMode:
        energies[mode] = run_app(TINY, 16, mode).energy_kj
    assert energies[PowerMode.PROPOSED] < energies[PowerMode.NONE]
    assert energies[PowerMode.DVFS] < energies[PowerMode.NONE]


def test_run_app_unknown_rank_count():
    with pytest.raises(ValueError):
        run_app(TINY, 64)


def test_nas_is_matches_table2_default():
    """End-to-end: NAS IS at 64 ranks lands on the paper's Table II row."""
    r = run_app(NAS_IS, 64)
    assert r.energy_kj == pytest.approx(3.8456, rel=0.05)
    assert r.total_time_s == pytest.approx(1.67, rel=0.08)


def test_nas_is_proposed_saves_energy():
    base = run_app(NAS_IS, 64)
    prop = run_app(NAS_IS, 64, PowerMode.PROPOSED)
    saving = 1 - prop.energy_kj / base.energy_kj
    assert 0.02 < saving < 0.12  # paper: ~8%
    # Runtime cost stays in the paper's 2-5% band (we allow up to 8%).
    assert prop.total_time_s / base.total_time_s < 1.08
