"""NAS CG as a negative control: allreduce-dominated codes barely benefit
from the paper's alltoall/bcast-focused power schemes."""

import pytest

from repro.apps import CG_CLASSES, run_app, synthesize_cg, synthesize_ft
from repro.collectives import PowerMode


def test_cg_classes_known():
    assert "B" in CG_CLASSES
    with pytest.raises(ValueError):
        synthesize_cg("Z", 32)
    with pytest.raises(ValueError):
        synthesize_cg("B", 0)


def test_cg_runs_and_is_compute_dominated():
    app = synthesize_cg("B", 32, sim_iterations=2)
    r = run_app(app, 32)
    assert r.total_time_s > 0
    # CG has no alltoall at all.
    assert r.alltoall_time_s == 0


def test_cg_saving_small_and_overhead_negligible():
    app = synthesize_cg("B", 32, sim_iterations=2)
    base = run_app(app, 32)
    prop = run_app(app, 32, PowerMode.PROPOSED)
    saving = 1 - prop.energy_kj / base.energy_kj
    assert 0.0 <= saving < 0.05  # nothing like FT/IS's 5-8%
    assert prop.total_time_s / base.total_time_s < 1.02


def test_ft_saves_much_more_than_cg():
    """The contrast that motivates the paper's focus on alltoall codes."""
    cg = synthesize_cg("B", 32, sim_iterations=2)
    ft = synthesize_ft("B", 32, sim_iterations=2)
    cg_saving = 1 - run_app(cg, 32, PowerMode.PROPOSED).energy_kj / run_app(cg, 32).energy_kj
    ft_saving = 1 - run_app(ft, 32, PowerMode.PROPOSED).energy_kj / run_app(ft, 32).energy_kj
    assert ft_saving > 2 * cg_saving
