"""Tests for the instantaneous power model and its paper calibration."""

import pytest

from repro.cluster import Activity, Cluster, ClusterSpec
from repro.power import PowerModel, PowerModelParams, fit
from repro.power.calibration import (
    PAPER_SYSTEM_W_DEFAULT,
    PAPER_SYSTEM_W_DVFS,
    PAPER_SYSTEM_W_PROPOSED,
)


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.paper_testbed())


@pytest.fixture
def model():
    return PowerModel()


def test_core_power_increases_with_frequency(model):
    assert model.full_core_power(2.4) > model.full_core_power(1.6)


def test_gate_bounds(model):
    assert model.gate(0) == pytest.approx(1.0)
    assert 0.0 < model.gate(7) < 1.0
    gates = [model.gate(j) for j in range(8)]
    assert all(a > b for a, b in zip(gates, gates[1:]))


def test_activity_scales_power(model, cluster):
    core = cluster.cores[0]
    core.set_activity(Activity.POLLING, 0.0)
    polling = model.core_power(core)
    core.set_activity(Activity.IDLE, 0.0)
    idle = model.core_power(core)
    core.set_activity(Activity.BLOCKED, 0.0)
    blocked = model.core_power(core)
    assert polling > blocked > idle


def test_compute_equals_polling_power(model, cluster):
    """Polling spins the core flat out: same draw as computation (the basis
    of the paper's claim that polling wastes power)."""
    core = cluster.cores[0]
    core.set_activity(Activity.POLLING, 0.0)
    p1 = model.core_power(core)
    core.set_activity(Activity.COMPUTE, 0.0)
    assert model.core_power(core) == pytest.approx(p1)


def test_system_power_default_matches_paper(model, cluster):
    """All 64 cores polling at fmax ⇒ ≈2.3 kW (Fig 7b 'No-Power')."""
    cluster.set_all(0.0, frequency_ghz=2.4, activity=Activity.POLLING)
    assert model.system_power(cluster) == pytest.approx(PAPER_SYSTEM_W_DEFAULT, rel=0.01)


def test_system_power_dvfs_matches_paper(model, cluster):
    """All cores polling at fmin ⇒ ≈1.8 kW (Fig 7b 'Freq-Scaling')."""
    cluster.set_all(0.0, frequency_ghz=1.6, activity=Activity.POLLING)
    assert model.system_power(cluster) == pytest.approx(PAPER_SYSTEM_W_DVFS, rel=0.01)


def test_system_power_proposed_matches_paper(model, cluster):
    """fmin with half the cores at T7 ⇒ ≈1.6 kW (Fig 7b 'Proposed')."""
    cluster.set_all(0.0, frequency_ghz=1.6, activity=Activity.POLLING)
    for node in cluster.nodes:
        node.sockets[1].set_tstate(7, 0.0)
    assert model.system_power(cluster) == pytest.approx(PAPER_SYSTEM_W_PROPOSED, rel=0.01)


def test_proposed_bcast_state_saves_more_than_dvfs(model, cluster):
    """Socket A at T4 + socket B at T7 (power-aware bcast, §V-B) must sit
    below the DVFS-only level."""
    cluster.set_all(0.0, frequency_ghz=1.6, activity=Activity.POLLING)
    for node in cluster.nodes:
        node.sockets[0].set_tstate(4, 0.0)
        node.sockets[1].set_tstate(7, 0.0)
    p = model.system_power(cluster)
    assert p < PAPER_SYSTEM_W_PROPOSED
    assert p > 1000.0


def test_fit_reproduces_defaults():
    result = fit()
    params = PowerModelParams()
    assert result.core_idle_w == pytest.approx(params.core_idle_w, abs=0.01)
    assert result.core_dyn_w_per_ghz3 == pytest.approx(
        params.core_dyn_w_per_ghz3, abs=0.001
    )
    assert result.throttle_gating == pytest.approx(params.throttle_gating, abs=0.001)


def test_fit_self_consistency():
    result = fit()
    assert result.system_power_all_polling(2.4) == pytest.approx(2300.0, abs=1.0)
    assert result.system_power_all_polling(1.6) == pytest.approx(1800.0, abs=1.0)


def test_params_validation():
    with pytest.raises(ValueError):
        PowerModelParams(throttle_gating=1.5)
    with pytest.raises(ValueError):
        PowerModelParams(core_idle_w=-1.0)
    with pytest.raises(ValueError):
        PowerModelParams(activity_factors={Activity.IDLE: 0.3})


def test_core_power_for_matches_core_power(model, cluster):
    core = cluster.cores[0]
    core.set_frequency(1.6, 0.0)
    core.set_tstate(4, 0.0)
    core.set_activity(Activity.POLLING, 0.0)
    assert model.core_power(core) == pytest.approx(
        model.core_power_for(1.6, 4, Activity.POLLING)
    )
