"""Tests for energy accounting and the sampled power meter."""

import pytest

from repro.cluster import Activity, Cluster, ClusterSpec
from repro.power import EnergyAccountant, PowerMeter


@pytest.fixture
def cluster():
    return Cluster(ClusterSpec.paper_testbed())


def test_constant_state_energy(cluster):
    acct = EnergyAccountant(cluster)
    model = acct.model
    acct.finalize(10.0)
    expected_core = sum(model.core_power(c) for c in cluster.cores) * 10.0
    assert acct.cores_energy_j() == pytest.approx(expected_core)
    assert acct.node_base_energy_j() == pytest.approx(120.0 * 8 * 10.0)
    assert acct.total_energy_j() == pytest.approx(expected_core + 9600.0)


def test_state_change_splits_segments(cluster):
    acct = EnergyAccountant(cluster)
    core = cluster.cores[0]
    p_idle_fmax = acct.model.core_power(core)
    core.set_activity(Activity.COMPUTE, 4.0)
    p_compute = acct.model.core_power(core)
    acct.finalize(10.0)
    expected = p_idle_fmax * 4.0 + p_compute * 6.0
    assert acct.core_energy_j(core.core_id) == pytest.approx(expected)


def test_energy_polling_fmax_vs_fmin(cluster):
    """The whole point of DVFS: lower frequency, lower energy per second."""
    acct = EnergyAccountant(cluster)
    cluster.set_all(0.0, activity=Activity.POLLING)
    cluster.set_all(5.0, frequency_ghz=1.6)
    acct.finalize(10.0)
    # First 5 s at fmax must cost more than the last 5 s at fmin.
    first = sum(s.energy_j for s in acct.segments if s.end <= 5.0)
    second = sum(s.energy_j for s in acct.segments if s.start >= 5.0)
    assert first > second > 0


def test_average_power_default_run(cluster):
    acct = EnergyAccountant(cluster)
    cluster.set_all(0.0, activity=Activity.POLLING)
    acct.finalize(2.0)
    assert acct.average_power_w() == pytest.approx(2300.0, rel=0.01)


def test_total_before_finalize_requires_now(cluster):
    acct = EnergyAccountant(cluster)
    with pytest.raises(ValueError):
        acct.total_energy_j()
    assert acct.total_energy_j(now=1.0) >= 0.0


def test_kj_helper(cluster):
    acct = EnergyAccountant(cluster)
    acct.finalize(1.0)
    assert acct.total_energy_kj() == pytest.approx(acct.total_energy_j() / 1e3)


def test_segments_disabled(cluster):
    acct = EnergyAccountant(cluster, keep_segments=False)
    cluster.set_all(1.0, activity=Activity.POLLING)
    acct.finalize(2.0)
    assert acct.segments == []
    assert acct.total_energy_j() > 0


def test_meter_constant_power(cluster):
    acct = EnergyAccountant(cluster)
    cluster.set_all(0.0, activity=Activity.POLLING)
    acct.finalize(4.0)
    trace = PowerMeter(interval_s=0.5).sample(acct)
    assert len(trace) == 8
    for p in trace.power_w:
        assert p == pytest.approx(2300.0, rel=0.01)
    assert trace.mean_power_w() == pytest.approx(2300.0, rel=0.01)
    assert trace.times_s[-1] == pytest.approx(4.0)


def test_meter_captures_step_change(cluster):
    acct = EnergyAccountant(cluster)
    cluster.set_all(0.0, activity=Activity.POLLING)
    cluster.set_all(2.0, frequency_ghz=1.6)
    acct.finalize(4.0)
    trace = PowerMeter(interval_s=0.5).sample(acct)
    assert trace.power_w[0] == pytest.approx(2300.0, rel=0.01)
    assert trace.power_w[-1] == pytest.approx(1800.0, rel=0.01)


def test_meter_partial_last_bucket(cluster):
    acct = EnergyAccountant(cluster)
    cluster.set_all(0.0, activity=Activity.POLLING)
    acct.finalize(0.75)
    trace = PowerMeter(interval_s=0.5).sample(acct)
    assert len(trace) == 2
    # Partial bucket still reports the average *power*, not scaled energy.
    assert trace.power_w[1] == pytest.approx(trace.power_w[0], rel=0.01)


def test_meter_requires_finalize_or_end(cluster):
    acct = EnergyAccountant(cluster)
    with pytest.raises(ValueError):
        PowerMeter().sample(acct)
    trace = PowerMeter().sample(acct, end=1.0)
    # No closed segments yet: only node base power shows.
    assert trace.power_w[0] == pytest.approx(120.0 * 8)


def test_meter_validation():
    with pytest.raises(ValueError):
        PowerMeter(interval_s=0.0)


def test_meter_empty_window(cluster):
    acct = EnergyAccountant(cluster)
    acct.finalize(0.0)
    trace = PowerMeter().sample(acct)
    assert len(trace) == 0
    assert trace.mean_power_w() == 0.0
    assert trace.peak_power_w() == 0.0


def test_detach_stops_accumulation(cluster):
    acct = EnergyAccountant(cluster)
    core = cluster.cores[0]
    core.set_activity(Activity.COMPUTE, 1.0)
    acct.detach()
    assert acct.detached
    # Post-detach mutations no longer reach the accountant...
    core.set_activity(Activity.IDLE, 2.0)
    acct.finalize(3.0)
    # ...so core 0 shows exactly one recorded split (at t=1.0).
    splits = [s for s in acct.segments if s.core_id == core.core_id]
    assert [s.start for s in splits] == [0.0, 1.0]
    acct.detach()  # idempotent


def test_finalized_accountant_rejects_late_mutations(cluster):
    acct = EnergyAccountant(cluster)
    acct.finalize(5.0)
    with pytest.raises(RuntimeError, match="finalized at t=5.0"):
        cluster.cores[0].set_activity(Activity.COMPUTE, 6.0)


def test_cluster_reuse_after_detach(cluster):
    """Two back-to-back accountants over one cluster stay independent."""
    first = EnergyAccountant(cluster)
    cluster.cores[0].set_activity(Activity.COMPUTE, 1.0)
    first.finalize(2.0)
    first_total = first.total_energy_j()
    first.detach()

    second = EnergyAccountant(cluster, start_time=2.0)
    cluster.cores[0].set_activity(Activity.IDLE, 3.0)
    second.finalize(4.0)
    # The first accountant's books are closed and unchanged.
    assert first.total_energy_j() == first_total
    assert second.total_energy_j() > 0


def test_remove_listener_unknown_raises(cluster):
    with pytest.raises(ValueError):
        cluster.remove_listener(lambda now, core, field, old, new: None)
