"""Tests for energy-delay metrics and scheme comparison."""

import pytest

from repro.apps import CollectiveCall, ComputeEvent, app_from_trace, run_app
from repro.collectives import PowerMode
from repro.mpi import run_collective_once
from repro.power import (
    SchemeComparison,
    energy_delay_product,
    energy_delay_squared,
)


def test_edp_and_ed2p_formulas():
    assert energy_delay_product(10.0, 2.0) == 20.0
    assert energy_delay_squared(10.0, 2.0) == 40.0


def test_metrics_reject_negative():
    with pytest.raises(ValueError):
        energy_delay_product(-1.0, 2.0)
    with pytest.raises(ValueError):
        energy_delay_squared(1.0, -2.0)


def test_comparison_properties():
    cmp = SchemeComparison(
        baseline_energy_j=100.0,
        baseline_duration_s=1.0,
        scheme_energy_j=90.0,
        scheme_duration_s=1.05,
    )
    assert cmp.energy_saving == pytest.approx(0.10)
    assert cmp.slowdown == pytest.approx(0.05)
    assert cmp.edp_ratio == pytest.approx(0.9 * 1.05)
    assert cmp.ed2p_ratio == pytest.approx(0.9 * 1.05**2)
    assert cmp.worthwhile(max_slowdown=0.05)
    assert not cmp.worthwhile(max_slowdown=0.04)


def test_comparison_from_job_results():
    base = run_collective_once("alltoall", 1 << 20, 64)
    from repro.collectives import CollectiveConfig, CollectiveEngine

    prop = run_collective_once(
        "alltoall", 1 << 20, 64,
        collectives=CollectiveEngine(CollectiveConfig(power_mode=PowerMode.PROPOSED)),
    )
    cmp = SchemeComparison.from_results(base, prop)
    assert cmp.energy_saving > 0
    assert cmp.edp_ratio < 1.0  # the paper's scheme wins under EDP


def test_comparison_from_app_results():
    app = app_from_trace(
        "t", 16,
        [ComputeEvent(5e-3), CollectiveCall("alltoall", 128 << 10)],
        iterations=4, sim_iterations=2,
    )
    base = run_app(app, 16)
    prop = run_app(app, 16, PowerMode.PROPOSED)
    cmp = SchemeComparison.from_results(base, prop)
    assert cmp.energy_saving > 0
    assert cmp.slowdown < 0.10
