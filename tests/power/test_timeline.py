"""Columnar power timeline: SegmentStore/SegmentView units, the
columnar-vs-object differential (DESIGN.md §13), and meter regressions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Activity, Cluster, ClusterSpec
from repro.power import (
    EnergyAccountant,
    PowerMeter,
    PowerModel,
    PowerSegment,
    SegmentStore,
    SegmentView,
)


# ---------------------------------------------------------------------------
# SegmentStore / SegmentView units
# ---------------------------------------------------------------------------
def test_store_append_len_and_getitem():
    store = SegmentStore()
    assert len(store) == 0
    store.append(3, 0.0, 1.0, 10.0)
    store.append(4, 1.0, 2.5, 20.0)
    # Rows still staged in the python buffer must already be observable.
    assert len(store) == 2
    assert store[0] == PowerSegment(3, 0.0, 1.0, 10.0)
    assert store[1] == PowerSegment(4, 1.0, 2.5, 20.0)
    assert store[-1] == store[1]
    with pytest.raises(IndexError):
        store[2]


def test_store_folds_and_grows_past_initial_capacity():
    store = SegmentStore()
    n = SegmentStore.INITIAL_CAPACITY * 2 + SegmentStore.FLUSH_BATCH // 2 + 7
    for i in range(n):
        store.append(i % 8, float(i), float(i + 1), float(i % 5 + 1))
    assert len(store) == n
    assert store.capacity >= n - SegmentStore.FLUSH_BATCH  # staged tail
    core_id, start, end, power = store.columns()
    assert core_id.dtype == np.int64
    assert start.dtype == end.dtype == power.dtype == np.float64
    assert len(core_id) == n
    assert core_id[12345 % n] == (12345 % n) % 8
    assert start[n - 1] == float(n - 1)
    # columns() folded the staging buffer; reads stay consistent.
    assert store[n - 1] == PowerSegment(
        (n - 1) % 8, float(n - 1), float(n), float((n - 1) % 5 + 1)
    )


def test_store_iteration_yields_segments_in_order():
    store = SegmentStore()
    rows = [(i, i * 1.0, i * 1.0 + 0.5, 7.0 + i) for i in range(5)]
    for row in rows:
        store.append(*row)
    segs = list(store)
    assert segs == [PowerSegment(*row) for row in rows]
    assert segs[2].energy_j == pytest.approx(9.0 * 0.5)


def test_view_equality_slicing_and_repr():
    store = SegmentStore()
    rows = [(0, 0.0, 1.0, 5.0), (1, 1.0, 2.0, 6.0), (0, 2.0, 4.0, 7.0)]
    for row in rows:
        store.append(*row)
    view = SegmentView(store)
    as_list = [PowerSegment(*row) for row in rows]
    assert view == as_list
    assert list(view[1:]) == as_list[1:]
    assert view[-1] == as_list[-1]
    assert len(view) == 3
    assert view != as_list[:2]
    assert "SegmentView" in repr(view)


# ---------------------------------------------------------------------------
# Differential: columnar accountant vs the object oracle
# ---------------------------------------------------------------------------
_KINDS = ("freq", "tstate", "act")
_ACTIVITIES = list(Activity)


def _mutation_schedules():
    step = st.tuples(
        st.floats(min_value=0.0, max_value=1.5, allow_nan=False,
                  allow_infinity=False),
        st.integers(min_value=0, max_value=7),   # core index
        st.sampled_from(_KINDS),
        st.integers(min_value=0, max_value=7),   # value selector
    )
    return st.lists(step, max_size=64)


def _dual_accountants():
    """One cluster observed by both backends at once: every mutation
    notifies the columnar accountant and the object oracle back to back."""
    cluster = Cluster(ClusterSpec.with_shape(1))  # 8 cores
    columnar = EnergyAccountant(cluster, PowerModel(cached=True),
                                columnar=True)
    oracle = EnergyAccountant(cluster, PowerModel(cached=False),
                              columnar=False)
    return cluster, columnar, oracle


def _apply_schedule(cluster, schedule):
    freqs = sorted({
        cluster.cores[0].spec.nearest_pstate(f)
        for f in np.linspace(1.0, 3.2, 9)
    })
    t = 0.0
    for dt, core_idx, kind, value in schedule:
        t += dt
        core = cluster.cores[core_idx % len(cluster.cores)]
        if kind == "freq":
            core.set_frequency(freqs[value % len(freqs)], t)
        elif kind == "tstate":
            core.set_tstate(value, t)
        else:
            core.set_activity(_ACTIVITIES[value % len(_ACTIVITIES)], t)
    return t


@given(_mutation_schedules())
@settings(max_examples=60, deadline=None)
def test_columnar_matches_object_oracle(schedule):
    cluster, columnar, oracle = _dual_accountants()
    end = _apply_schedule(cluster, schedule) + 0.5
    columnar.finalize(end)
    oracle.finalize(end)

    for core in cluster.cores:
        assert columnar.core_energy_j(core.core_id) == \
            oracle.core_energy_j(core.core_id)
    assert columnar.cores_energy_j() == oracle.cores_energy_j()
    assert columnar.total_energy_j() == oracle.total_energy_j()
    assert isinstance(columnar.segments, SegmentView)
    assert columnar.segments == list(oracle.segments)


@given(_mutation_schedules())
@settings(max_examples=40, deadline=None)
def test_vectorized_meter_matches_reference_on_live_segments(schedule):
    cluster, columnar, oracle = _dual_accountants()
    end = _apply_schedule(cluster, schedule) + 0.5
    columnar.finalize(end)
    oracle.finalize(end)

    meter = PowerMeter(0.3)
    base_w = columnar.model.params.node_base_w * cluster.n_nodes
    vec = meter.from_segments(columnar.segments, 0.0, end, base_w=base_w)
    ref = meter.from_segments_reference(oracle.segments, 0.0, end,
                                        base_w=base_w)
    assert np.array_equal(vec.times_s, ref.times_s)
    assert np.array_equal(vec.power_w, ref.power_w)


@given(_mutation_schedules())
@settings(max_examples=40, deadline=None)
def test_meter_conserves_energy(schedule):
    """Summing bucket energy over the whole window recovers the
    accountant's core energy (the meter neither drops nor double-counts)."""
    cluster, columnar, _oracle = _dual_accountants()
    end = _apply_schedule(cluster, schedule) + 0.5
    columnar.finalize(end)

    meter = PowerMeter(0.3)
    trace = meter.from_segments(columnar.segments, 0.0, end, base_w=0.0)
    edges = np.concatenate(([0.0], trace.times_s))
    bucket_energy = float(np.sum(trace.power_w * np.diff(edges)))
    assert math.isclose(bucket_energy, columnar.cores_energy_j(),
                        rel_tol=1e-9, abs_tol=1e-9)


def test_mid_run_energy_queries_stay_exact():
    """Lazy column folding must not regroup additions: querying energy
    mid-run and again later still matches the eagerly-summing oracle."""
    cluster, columnar, oracle = _dual_accountants()
    core = cluster.cores[0]
    core.set_activity(Activity.COMPUTE, 1.0)
    core.set_tstate(3, 2.5)
    assert columnar.core_energy_j(0) == oracle.core_energy_j(0)
    core.set_frequency(1.6, 4.0)
    core.set_activity(Activity.IDLE, 5.0)
    columnar.finalize(6.0)
    oracle.finalize(6.0)
    assert columnar.core_energy_j(0) == oracle.core_energy_j(0)
    assert columnar.cores_energy_j() == oracle.cores_energy_j()


# ---------------------------------------------------------------------------
# Meter regressions
# ---------------------------------------------------------------------------
def test_degenerate_fp_sliver_final_bucket_is_merged():
    """(end-start)/interval can land a hair above an integer, leaving a
    ~1e-17 s final bucket whose energy/width division exploded to an
    inf/garbage spike; such slivers merge into the previous bucket."""
    end = 0.30000000000000004  # 3 * 0.1 in binary fp
    meter = PowerMeter(0.1)
    segs = [PowerSegment(0, 0.0, end, 100.0)]
    trace = meter.from_segments(segs, 0.0, end)
    assert len(trace) == 3
    assert np.isfinite(trace.power_w).all()
    assert trace.times_s[-1] == end
    assert trace.power_w == pytest.approx([100.0, 100.0, 100.0])
    ref = meter.from_segments_reference(segs, 0.0, end)
    assert np.array_equal(trace.times_s, ref.times_s)
    assert np.array_equal(trace.power_w, ref.power_w)


def test_true_partial_final_bucket_still_reported():
    meter = PowerMeter(0.1)
    segs = [PowerSegment(0, 0.0, 0.25, 100.0)]
    trace = meter.from_segments(segs, 0.0, 0.25)
    assert len(trace) == 3
    assert trace.times_s[-1] == 0.25
    assert trace.power_w == pytest.approx([100.0, 100.0, 100.0])


def test_governed_faulted_job_identical_across_backends():
    """End to end: a countdown-governed, fault-perturbed job produces the
    same makespan, energy, segment log and sampled trace on both
    accounting backends."""
    from repro.faults.plan import parse_fault_spec
    from repro.mpi.job import MpiJob
    from repro.runtime.governor import (
        Governor,
        GovernorConfig,
        GovernorPolicy,
    )

    def run(columnar):
        job = MpiJob(
            32,
            cluster_spec=ClusterSpec.with_shape(4),
            governor=Governor(
                GovernorConfig(policy=GovernorPolicy.COUNTDOWN)
            ),
            faults=parse_fault_spec(
                "degrade:factor=0.6,frac=0.25;"
                "noise:period=500us,pulse=20us,frac=0.25",
                seed=3,
            ),
            columnar=columnar,
        )

        def program(ctx):
            yield from ctx.alltoall(8 << 10)

        return job.run(program)

    col = run(columnar=True)
    obj = run(columnar=False)
    assert col.duration_s == obj.duration_s
    assert col.energy_j == obj.energy_j
    assert isinstance(col.accountant.segments, SegmentView)
    assert col.accountant.segments == list(obj.accountant.segments)
    meter = PowerMeter(1e-3)
    base_w = (col.accountant.model.params.node_base_w
              * col.accountant.cluster.n_nodes)
    vec = meter.sample(col.accountant)
    ref = meter.from_segments_reference(
        obj.accountant.segments, 0.0, obj.accountant.finalized_at,
        base_w=base_w,
    )
    assert np.array_equal(vec.times_s, ref.times_s)
    assert np.array_equal(vec.power_w, ref.power_w)


@pytest.mark.parametrize("columnar", [True, False])
def test_sample_without_segments_raises_clear_error(columnar):
    cluster = Cluster(ClusterSpec.with_shape(1))
    acct = EnergyAccountant(cluster, keep_segments=False, columnar=columnar)
    acct.finalize(2.0)
    with pytest.raises(ValueError, match="keep_segments"):
        PowerMeter(0.5).sample(acct)
