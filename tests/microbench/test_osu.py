"""Tests for the simulated OSU microbenchmarks."""

from repro.microbench import (
    osu_bibw,
    osu_bw,
    osu_collective_latency,
    osu_latency,
    sweep,
)
from repro.mpi import ProgressMode


def test_latency_small_message_near_wire_latency():
    t = osu_latency(8, iterations=4)
    # Eager path: ~o_send + wire latency + o_recv.
    assert 1e-6 < t < 6e-6


def test_latency_grows_with_size():
    t_small = osu_latency(1 << 10, iterations=4)
    t_large = osu_latency(1 << 20, iterations=4)
    assert t_large > 10 * t_small


def test_intra_node_latency_lower():
    inter = osu_latency(4 << 10, inter_node=True, iterations=4)
    intra = osu_latency(4 << 10, inter_node=False, iterations=4)
    assert intra < inter


def test_blocking_latency_higher():
    polling = osu_latency(64 << 10, iterations=4)
    blocking = osu_latency(64 << 10, iterations=4, progress=ProgressMode.BLOCKING)
    assert blocking > polling


def test_bw_approaches_line_rate():
    bw = osu_bw(1 << 20, iterations=3)
    # QDR effective payload bandwidth is 3 GB/s in the model.
    assert 2.5e9 < bw <= 3.0e9


def test_bw_small_messages_below_line_rate():
    small = osu_bw(1 << 10, iterations=3)
    large = osu_bw(1 << 20, iterations=3)
    assert small < large  # per-message overheads bite at 1 KB
    assert small < 2.9e9


def test_bibw_exceeds_unidirectional():
    uni = osu_bw(1 << 20, iterations=2)
    bi = osu_bibw(1 << 20, iterations=2)
    # Separate up/down links: bidirectional approaches 2x (minus the
    # window's congestion overhead on each direction).
    assert bi > 1.35 * uni


def test_collective_latency_matches_single_run_scale():
    t = osu_collective_latency("alltoall", 64 << 10, n_ranks=32,
                               iterations=2, warmup=1)
    assert 1e-3 < t < 50e-3


def test_collective_latency_power_mode():
    from repro.collectives import PowerMode
    t_none = osu_collective_latency("bcast", 1 << 20, n_ranks=32,
                                    iterations=2, warmup=1)
    t_prop = osu_collective_latency("bcast", 1 << 20, n_ranks=32,
                                    iterations=2, warmup=1,
                                    mode=PowerMode.PROPOSED)
    assert t_none < t_prop < t_none * 1.5


def test_sweep_returns_rows():
    rows = sweep(osu_latency, sizes=(64, 4096), iterations=2)
    assert [r[0] for r in rows] == [64, 4096]
    assert rows[0][1] < rows[1][1]
