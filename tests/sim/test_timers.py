"""Tests for the indexed/cancellable Timer API on the Environment."""

import pytest

from repro.sim import Environment, Timer


def test_call_after_fires_at_time():
    env = Environment()
    fired = []

    env.call_after(5.0, lambda t: fired.append(env.now))
    env.run()
    assert fired == [5.0]


def test_call_at_fires_at_absolute_time():
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(2.0)
        env.call_at(7.0, lambda t: fired.append(env.now))

    env.process(proc(env))
    env.run()
    assert fired == [7.0]


def test_call_at_in_past_rejected():
    env = Environment()

    def proc(env):
        yield env.timeout(3.0)

    env.process(proc(env))
    env.run()
    with pytest.raises(ValueError):
        env.call_at(1.0, lambda t: None)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.call_after(-1.0, lambda t: None)


def test_cancelled_timer_never_fires():
    env = Environment()
    fired = []

    timer = env.call_after(5.0, lambda t: fired.append(env.now))
    timer.cancel()
    env.run()
    assert fired == []
    assert timer.cancelled
    assert not timer.fired


def test_cancel_is_idempotent_and_safe_after_fire():
    env = Environment()
    fired = []

    timer = env.call_after(1.0, lambda t: fired.append(env.now))
    env.run()
    assert timer.fired
    timer.cancel()  # after fire: no-op
    timer.cancel()  # repeatable
    assert fired == [1.0]


def test_cancel_mid_run_via_another_timer():
    """A timer cancelled before its firing time stays in the heap (lazy
    deletion) but is purged unobserved: it neither fires nor advances the
    clock to its scheduled time."""
    env = Environment()
    fired = []

    late = env.call_after(10.0, lambda t: fired.append("late"))
    env.call_after(2.0, lambda t: late.cancel())
    env.run()
    assert fired == []
    assert env.now == 2.0  # the dead heap entry does not drain the clock


def test_cancelled_timer_does_not_count_as_processed_event():
    env = Environment()
    env.call_after(5.0, lambda t: None).cancel()
    env.run()
    assert env.events_processed == 0
    assert env.now == 0.0


def test_cancelled_timer_past_horizon_does_not_extend_run():
    """run(until=T) + a pending cancelled timer beyond T: the bounded run
    must stop at T, and a later unbounded run must not revive the entry
    (the governor's timeout-θ timers rely on this)."""
    env = Environment()
    fired = []

    late = env.call_after(10.0, lambda t: fired.append("late"))
    env.call_after(2.0, lambda t: late.cancel())
    env.run(until=5.0)
    assert env.now == 5.0
    assert env.peek() == float("inf")  # dead entry is not pending work
    env.run()
    assert fired == []
    assert env.now == 5.0


def test_live_timer_past_horizon_survives_bounded_run():
    env = Environment()
    fired = []

    env.call_after(10.0, lambda t: fired.append(env.now))
    env.run(until=5.0)
    assert env.now == 5.0
    assert fired == []
    assert env.peek() == 10.0
    env.run()
    assert fired == [10.0]


def test_cancel_between_runs_before_horizon():
    """A timer inside the horizon but cancelled between runs is purged by
    the horizon loop without being stepped."""
    env = Environment()
    fired = []

    timer = env.call_after(3.0, lambda t: fired.append("t"))
    env.run(until=1.0)
    timer.cancel()
    before = env.events_processed
    env.run(until=5.0)
    assert fired == []
    assert env.events_processed == before
    assert env.now == 5.0


def test_timer_callback_receives_timer_handle():
    env = Environment()
    seen = []

    timer = env.call_after(1.0, lambda t: seen.append(t))
    env.run()
    assert seen == [timer]
    assert isinstance(timer, Timer)


def test_timer_at_attribute_is_absolute():
    env = Environment()

    def proc(env):
        yield env.timeout(4.0)
        timer = env.call_after(6.0, lambda t: None)
        assert timer.at == 10.0

    env.process(proc(env))
    env.run()


def test_rearm_pattern():
    """The fabric's keep-or-replace pattern: cancel then re-schedule
    earlier, only the replacement fires."""
    env = Environment()
    fired = []

    timer = env.call_after(10.0, lambda t: fired.append(("old", env.now)))
    timer.cancel()
    env.call_after(4.0, lambda t: fired.append(("new", env.now)))
    env.run()
    assert fired == [("new", 4.0)]


def test_timers_interleave_deterministically_with_timeouts():
    env = Environment()
    order = []

    def proc(env):
        yield env.timeout(1.0)
        order.append("timeout@1")
        yield env.timeout(2.0)
        order.append("timeout@3")

    env.process(proc(env))
    env.call_after(1.0, lambda t: order.append("timer@1"))
    env.call_after(2.0, lambda t: order.append("timer@2"))
    env.run()
    # Same-time ties break by creation order: the timer handles were created
    # before the process body ran and scheduled its first timeout.
    assert order == ["timer@1", "timeout@1", "timer@2", "timeout@3"]
