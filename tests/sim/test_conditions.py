"""Tests for composite AllOf/AnyOf condition events."""

import pytest

from repro.sim import Environment


def test_all_of_waits_for_slowest():
    env = Environment()
    out = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield env.all_of([t1, t2])
        out.append((env.now, result[t1], result[t2]))

    env.process(proc(env))
    env.run()
    assert out == [(5.0, "fast", "slow")]


def test_any_of_fires_on_first():
    env = Environment()
    out = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield env.any_of([t1, t2])
        out.append(env.now)
        assert t1 in result
        assert t2 not in result

    env.process(proc(env))
    env.run()
    assert out == [1.0]


def test_all_of_empty_fires_immediately():
    env = Environment()
    out = []

    def proc(env):
        yield env.timeout(2.0)
        yield env.all_of([])
        out.append(env.now)

    env.process(proc(env))
    env.run()
    assert out == [2.0]


def test_any_of_empty_fires_immediately():
    env = Environment()
    out = []

    def proc(env):
        yield env.any_of([])
        out.append(env.now)

    env.process(proc(env))
    env.run()
    assert out == [0.0]


def test_all_of_with_already_fired_events():
    env = Environment()
    out = []

    def proc(env, ev):
        yield env.timeout(3.0)
        result = yield env.all_of([ev, env.timeout(1.0)])
        out.append(env.now)
        assert ev in result

    ev = env.event()
    ev.succeed("pre")
    env.process(proc(env, ev))
    env.run()
    assert out == [4.0]


def test_all_of_failure_propagates():
    env = Environment()
    caught = []

    def proc(env, bad):
        try:
            yield env.all_of([env.timeout(10.0), bad])
        except KeyError as exc:
            caught.append((env.now, exc.args[0]))

    bad = env.event()
    env.process(proc(env, bad))

    def failer(env, bad):
        yield env.timeout(2.0)
        bad.fail(KeyError("broken"))

    env.process(failer(env, bad))
    env.run()
    assert caught == [(2.0, "broken")]


def test_condition_value_mapping_api():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(1.0, value="b")
        result = yield env.all_of([t1, t2])
        assert len(result) == 2
        assert list(result) == [t1, t2]
        assert result.todict() == {t1: "a", t2: "b"}
        assert result == {t1: "a", t2: "b"}
        with pytest.raises(KeyError):
            result[env.event()]

    env.process(proc(env))
    env.run()


def test_cross_environment_condition_rejected():
    env1, env2 = Environment(), Environment()
    t2 = env2.timeout(1.0)
    with pytest.raises(ValueError):
        env1.all_of([t2])


def test_nested_conditions():
    env = Environment()
    out = []

    def proc(env):
        inner = env.all_of([env.timeout(2.0), env.timeout(3.0)])
        yield env.any_of([inner, env.timeout(10.0)])
        out.append(env.now)

    env.process(proc(env))
    env.run()
    assert out == [3.0]
