"""Tests for the Tracer hook bus (repro.sim.trace)."""

import io
import json

import pytest

from repro.sim import Environment, NullTracer, RecordingTracer
from repro.sim.trace import (
    NULL_TRACER,
    JsonlTracer,
    TraceRecord,
    default_tracer,
    use_tracer,
)


def test_null_tracer_is_disabled():
    assert NullTracer().enabled is False
    assert NULL_TRACER.enabled is False
    NULL_TRACER.close()  # no-op, must not raise


def test_environment_defaults_to_null_tracer():
    env = Environment()
    assert env.tracer is NULL_TRACER


def test_recording_tracer_captures_process_events():
    tracer = RecordingTracer()
    env = Environment(tracer=tracer)

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(2.0)

    env.process(proc(env))
    env.run()
    resumes = tracer.of_type("process.resume")
    suspends = tracer.of_type("process.suspend")
    assert len(resumes) >= 2  # one per timeout firing
    assert len(suspends) >= 2  # one per park
    assert all(r.data["process"] for r in resumes)
    assert suspends[0].data["target"] == "Timeout"
    # Timestamps are on the simulation clock, not wall-clock.
    assert resumes[-1].t == 3.0


def test_trace_record_json_round_trip():
    rec = TraceRecord(1.5, "mark", {"name": "x", "extra": 3})
    parsed = json.loads(rec.to_json())
    assert parsed == {"t": 1.5, "type": "mark", "name": "x", "extra": 3}


def test_typed_helpers_build_schema_records():
    tracer = RecordingTracer()
    tracer.core_activity(1.0, 3, 0, "idle", "compute")
    tracer.power_state(2.0, 3, 0, "frequency", 2.4, 1.6)
    tracer.power_state(3.0, 3, 0, "tstate", 0, 7)
    tracer.flow_start(4.0, "f0", 1e6, ["a", "b"], seq=17)
    tracer.flow_finish(5.0, "f0", 1e6, 4.0, ["a", "b"], seq=17)
    tracer.fault(6.0, "link", links=["a"], factor=0.5)
    tracer.mark(7.0, "checkpoint", phase=2)
    types = [r.type for r in tracer.records]
    assert types == [
        "core.activity",
        "core.frequency",
        "core.tstate",
        "flow.start",
        "flow.finish",
        "fault.link",
        "mark",
    ]
    finish = tracer.of_type("flow.finish")[0]
    assert finish.data["start"] == 4.0
    assert finish.data["seq"] == 17
    assert finish.data["delivered"] == 1e6  # defaults to nbytes
    assert finish.data["duration"] == 1.0
    assert tracer.of_type("flow.start")[0].data["seq"] == 17
    assert tracer.of_type("fault.link")[0].data["factor"] == 0.5
    assert len(tracer) == 7


def test_flow_finish_explicit_delivered():
    tracer = RecordingTracer()
    tracer.flow_finish(5.0, "f0", 1e6, 4.5, ["a"], seq=2, delivered=5e5)
    assert tracer.of_type("flow.finish")[0].data["delivered"] == 5e5


def test_flow_records_pair_one_to_one():
    """Every flow.start in a real run has exactly one flow.finish with a
    matching admission seq, full delivery, and a consistent duration."""
    from repro.mpi import MpiJob
    from repro.sim import SimSession

    tracer = RecordingTracer()
    session = SimSession(tracer=tracer)
    job = MpiJob(64, session=session)

    def program(ctx):
        yield from ctx.alltoall(64 << 10)
        yield from ctx.bcast(16 << 10)

    job.run(program)
    starts = {r.data["seq"]: r for r in tracer.of_type("flow.start")}
    finishes = tracer.of_type("flow.finish")
    assert starts and len(finishes) == len(starts)
    for fin in finishes:
        start = starts.pop(fin.data["seq"])  # KeyError = orphan/duplicate
        assert fin.data["delivered"] == start.data["bytes"]
        assert fin.data["start"] == start.t
        assert fin.data["duration"] == pytest.approx(fin.t - start.t)
        assert fin.data["duration"] > 0
    assert not starts  # no flow started without finishing


def test_jsonl_tracer_writes_one_record_per_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlTracer(str(path)) as tracer:
        tracer.mark(0.0, "a")
        tracer.mark(1.0, "b", detail="x")
    assert tracer.records_written == 2
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[1]) == {
        "t": 1.0, "type": "mark", "name": "b", "detail": "x",
    }


def test_jsonl_tracer_borrowed_file_left_open():
    buf = io.StringIO()
    tracer = JsonlTracer(buf)
    tracer.mark(0.0, "a")
    tracer.close()
    assert not buf.closed  # borrowed, not owned
    assert json.loads(buf.getvalue()) == {"t": 0.0, "type": "mark", "name": "a"}


def test_use_tracer_scopes_the_ambient_default():
    assert default_tracer() is NULL_TRACER
    tracer = RecordingTracer()
    with use_tracer(tracer) as active:
        assert active is tracer
        assert default_tracer() is tracer
        with use_tracer(None):  # None re-scopes to the null tracer
            assert default_tracer() is NULL_TRACER
        assert default_tracer() is tracer
    assert default_tracer() is NULL_TRACER


def test_use_tracer_restores_on_exception():
    tracer = RecordingTracer()
    try:
        with use_tracer(tracer):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert default_tracer() is NULL_TRACER


def test_core_transitions_emit_power_state_events():
    """End-to-end: a session-built cluster reports DVFS/T-state/activity
    transitions through the injected tracer."""
    from repro.sim import SimSession

    tracer = RecordingTracer()
    session = SimSession(tracer=tracer)
    core = session.cluster.cores[0]
    core.set_frequency(1.6, now=0.0)
    core.set_tstate(7, now=0.0)
    freq = tracer.of_type("core.frequency")
    tst = tracer.of_type("core.tstate")
    assert freq and freq[0].data["new"] == 1.6
    assert tst and tst[0].data["new"] == 7
    assert freq[0].data["core"] == core.core_id


# -- JsonlTracer lifecycle (flush cadence, close semantics) ------------------
def test_jsonl_flushes_every_n_records(tmp_path):
    path = tmp_path / "flush.jsonl"
    tracer = JsonlTracer(str(path), flush_every=2)
    tracer.mark(0.0, "a")
    tracer.mark(1.0, "b")  # hits the flush boundary
    tracer.mark(2.0, "c")  # buffered again
    # Without closing, the flushed prefix must already be on disk.
    on_disk = path.read_text().splitlines()
    assert len(on_disk) >= 2
    assert json.loads(on_disk[0])["name"] == "a"
    tracer.close()
    assert len(path.read_text().splitlines()) == 3


def test_jsonl_flush_every_validated():
    with pytest.raises(ValueError, match="flush_every"):
        JsonlTracer(io.StringIO(), flush_every=0)


def test_jsonl_close_is_idempotent_and_emit_after_close_raises(tmp_path):
    path = tmp_path / "closed.jsonl"
    tracer = JsonlTracer(str(path))
    tracer.mark(0.0, "a")
    tracer.close()
    tracer.close()  # second close: no-op, no error
    with pytest.raises(ValueError, match="closed"):
        tracer.mark(1.0, "late")
    # The record emitted before close survived; the late one never wrote.
    assert len(path.read_text().splitlines()) == 1


def test_jsonl_borrowed_sink_left_open():
    buf = io.StringIO()
    tracer = JsonlTracer(buf)
    tracer.mark(0.0, "a")
    tracer.close()
    assert not buf.closed  # borrowed, not owned
    assert json.loads(buf.getvalue())["name"] == "a"


# -- TeeTracer ---------------------------------------------------------------
def test_tee_fans_out_to_enabled_children():
    from repro.sim.trace import TeeTracer

    a, b = RecordingTracer(), RecordingTracer()
    disabled = NullTracer()
    tee = TeeTracer([a, None, disabled, b])
    tee.mark(0.5, "x")
    assert len(a.records) == len(b.records) == 1
    assert a.records[0].data == {"name": "x"}


def test_tee_close_closes_children():
    from repro.sim.trace import TeeTracer

    buf = io.StringIO()
    child = JsonlTracer(buf)
    tee = TeeTracer([child])
    tee.mark(0.0, "x")
    tee.close()
    with pytest.raises(ValueError):
        child.mark(1.0, "late")
