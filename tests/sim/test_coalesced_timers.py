"""CoalescedTimers: same-deadline arms share one heap entry (DESIGN.md §13)."""

import pytest

from repro.sim.engine import CoalescedTimers, Environment

Infinity = float("inf")


def test_same_deadline_wave_uses_one_heap_timer():
    env = Environment()
    timers = CoalescedTimers(env)
    fired = []
    for i in range(5):
        timers.call_at(2.0, lambda _slot, i=i: fired.append((i, env.now)))
    env.run()
    assert fired == [(i, 2.0) for i in range(5)]  # arm order preserved
    assert timers.slots_armed == 5
    assert timers.heap_timers == 1


def test_distinct_deadlines_get_distinct_timers():
    env = Environment()
    timers = CoalescedTimers(env)
    fired = []
    timers.call_at(1.0, lambda _slot: fired.append(env.now))
    timers.call_at(3.0, lambda _slot: fired.append(env.now))
    timers.call_at(1.0, lambda _slot: fired.append(env.now))
    env.run()
    assert fired == [1.0, 1.0, 3.0]
    assert timers.heap_timers == 2


def test_call_after_is_relative_to_arm_time():
    env = Environment()
    timers = CoalescedTimers(env)
    fired = []
    env.call_at(3.0, lambda _t: timers.call_after(
        1.5, lambda _slot: fired.append(env.now)))
    env.run()
    assert fired == [4.5]


def test_cancel_before_flush_creates_no_heap_timer():
    env = Environment()
    timers = CoalescedTimers(env)
    fired = []
    slots = [timers.call_at(5.0, lambda _slot: fired.append(env.now))
             for _ in range(3)]
    for slot in slots:
        slot.cancel()
    env.run()
    assert fired == []
    assert timers.slots_armed == 3
    assert timers.heap_timers == 0  # the whole wave died pre-flush


def test_cancel_after_flush_releases_heap_entry():
    env = Environment()
    timers = CoalescedTimers(env)
    fired = []
    slot = timers.call_at(5.0, lambda _slot: fired.append(env.now))
    env.run(until=1.0)  # flush happened at t=0; the group timer is live
    assert timers.heap_timers == 1
    slot.cancel()
    # The group's last live slot cancelled its timer: a bounded run has
    # nothing left to wake up for.
    assert env.peek() == Infinity
    env.run()
    assert fired == []
    assert slot.cancelled
    assert not slot.fired


def test_partial_cancel_keeps_group_firing():
    env = Environment()
    timers = CoalescedTimers(env)
    fired = []
    keep = timers.call_at(5.0, lambda _slot: fired.append("keep"))
    drop = timers.call_at(5.0, lambda _slot: fired.append("drop"))
    env.run(until=1.0)
    drop.cancel()
    env.run()
    assert fired == ["keep"]
    assert keep.fired
    assert not drop.fired


def test_cancel_is_idempotent_and_safe_after_fire():
    env = Environment()
    timers = CoalescedTimers(env)
    fired = []
    slot = timers.call_at(1.0, lambda _slot: fired.append(env.now))
    env.run()
    assert slot.fired
    slot.cancel()  # no-op after firing
    slot.cancel()
    assert not slot.cancelled
    assert fired == [1.0]


def test_call_at_in_past_rejected():
    env = Environment(initial_time=10.0)
    timers = CoalescedTimers(env)
    with pytest.raises(ValueError, match="past"):
        timers.call_at(9.0, lambda _slot: None)


def test_mid_run_wave_coalesces_across_callers():
    """Arms from different events at one sim timestamp join one group."""
    env = Environment()
    timers = CoalescedTimers(env)
    fired = []
    for i in range(4):
        env.call_at(1.0, lambda _t, i=i: timers.call_after(
            2.0, lambda _slot, i=i: fired.append(i)))
    env.run()
    assert fired == [0, 1, 2, 3]
    assert timers.slots_armed == 4
    assert timers.heap_timers == 1
