"""Edge-case and robustness tests for the DES core."""

import pytest

from repro.sim import Environment, Interrupt, Process, SimulationError


def test_interrupt_while_waiting_on_condition():
    env = Environment()
    log = []

    def waiter(env):
        try:
            yield env.all_of([env.timeout(50.0), env.timeout(60.0)])
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt("stop")

    victim = env.process(waiter(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(1.0, "stop")]


def test_interrupted_process_can_rewait_original_event():
    env = Environment()
    log = []

    def waiter(env):
        target = env.timeout(10.0, value="late")
        try:
            yield target
        except Interrupt:
            log.append(("interrupted", env.now))
        value = yield target  # the timeout still fires on schedule
        log.append((value, env.now))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt()

    victim = env.process(waiter(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [("interrupted", 2.0), ("late", 10.0)]


def test_uncaught_interrupt_fails_the_process():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)  # does not handle Interrupt

    def interrupter(env, victim):
        yield env.timeout(0.5)
        victim.interrupt()

    p = env.process(quick(env))
    env.process(interrupter(env, p))
    with pytest.raises(Interrupt):
        env.run()
    assert not p.is_alive


def test_self_interrupt_rejected():
    env = Environment()
    errors = []

    def suicidal(env):
        me = env.active_process
        try:
            me.interrupt()
        except SimulationError as exc:
            errors.append(str(exc))
        yield env.timeout(1.0)

    env.process(suicidal(env))
    env.run()
    assert errors and "interrupt itself" in errors[0]


def test_defused_failure_does_not_propagate():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("handled elsewhere"))
    ev.defuse()
    env.run()  # must not raise


def test_process_event_failure_with_no_watcher_propagates():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("unwatched")

    env.process(bad(env))
    with pytest.raises(KeyError):
        env.run()


def test_condition_with_failed_and_succeeded_mixed():
    env = Environment()
    caught = []

    def proc(env):
        ok = env.timeout(1.0)
        bad = env.event()
        bad.fail(ValueError("boom"))
        bad.defuse()
        try:
            yield env.all_of([ok, bad])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    env.run()
    assert caught == ["boom"]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        Process(env, lambda: None)  # not a generator


def test_timeout_zero_fires_same_timestep():
    env = Environment()
    order = []

    def proc(env):
        yield env.timeout(0.0)
        order.append("a")
        yield env.timeout(0.0)
        order.append("b")

    env.process(proc(env))
    env.run()
    assert env.now == 0.0
    assert order == ["a", "b"]


def test_deeply_nested_processes():
    env = Environment()

    def leaf(env, depth):
        yield env.timeout(1.0)
        return depth

    def node(env, depth):
        if depth == 0:
            value = yield from leaf(env, depth)
            return value
        child = env.process(node(env, depth - 1))
        value = yield child
        return value + 1

    root = env.process(node(env, 50))
    env.run()
    assert root.value == 50


def test_massive_fanout_completes():
    env = Environment()
    done = []

    def child(env, i):
        yield env.timeout((i % 13) * 1e-3)
        done.append(i)

    def parent(env):
        children = [env.process(child(env, i)) for i in range(500)]
        yield env.all_of(children)

    env.process(parent(env))
    env.run()
    assert len(done) == 500


def test_run_until_horizon_with_drained_queue():
    """Regression: run(until=T) must leave the clock *at* T even when the
    event queue drains long before the horizon (it used to stop at the
    last event's timestamp)."""
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=100.0)  # queue drains long before the horizon
    assert env.now == 100.0


def test_run_until_horizon_on_empty_queue_advances_clock():
    env = Environment()
    env.run(until=42.0)
    assert env.now == 42.0
    env.run(until=42.0)  # idempotent at the same horizon
    assert env.now == 42.0


def test_run_until_past_horizon_rejected():
    env = Environment()

    def proc(env):
        yield env.timeout(10.0)

    env.process(proc(env))
    env.run()
    assert env.now == 10.0
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_horizon_is_inclusive():
    """Events scheduled exactly at the horizon are processed."""
    env = Environment()
    fired = []

    def proc(env):
        yield env.timeout(7.0)
        fired.append(env.now)

    env.process(proc(env))
    env.run(until=7.0)
    assert fired == [7.0]
    assert env.now == 7.0


def test_events_processed_counter():
    env = Environment()
    assert env.events_processed == 0

    def proc(env):
        yield env.timeout(1.0)
        yield env.timeout(1.0)

    env.process(proc(env))
    env.run()
    assert env.events_processed > 0


def test_event_repr_and_states():
    env = Environment()
    ev = env.event()
    assert "pending" in repr(ev)
    ev.succeed()
    assert "triggered" in repr(ev)
