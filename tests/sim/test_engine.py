"""Unit tests for the DES engine core."""

import pytest

from repro.sim import (
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=5.0).now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(3.5)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [3.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc(env):
        value = yield env.timeout(1.0, value="payload")
        got.append(value)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_sequential_timeouts_accumulate():
    env = Environment()
    stamps = []

    def proc(env):
        for delay in (1.0, 2.0, 4.0):
            yield env.timeout(delay)
            stamps.append(env.now)

    env.process(proc(env))
    env.run()
    assert stamps == [1.0, 3.0, 7.0]


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_clock_there():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=4.5)
    assert env.now == 4.5


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env, done):
        yield env.timeout(2.0)
        done.succeed(42)

    done = env.event()
    env.process(proc(env, done))
    assert env.run(until=done) == 42
    assert env.now == 2.0


def test_process_return_value_propagates():
    env = Environment()

    def inner(env):
        yield env.timeout(1.0)
        return "result"

    def outer(env, out):
        value = yield env.process(inner(env))
        out.append(value)

    out = []
    env.process(outer(env, out))
    env.run()
    assert out == ["result"]


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    out = []

    def proc(env, ev):
        yield env.timeout(5.0)
        value = yield ev  # ev fired at t=0; must not deadlock
        out.append((env.now, value))

    ev = env.event()
    ev.succeed("early")
    env.process(proc(env, ev))
    env.run()
    assert out == [(5.0, "early")]


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_double_succeed_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception_instance():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_failed_event_raises_in_waiting_process():
    env = Environment()
    caught = []

    def proc(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(proc(env, ev))
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failed_event_propagates_to_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        env.run()


def test_process_exception_fails_its_event():
    env = Environment()
    caught = []

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner failure")

    def watcher(env):
        try:
            yield env.process(bad(env))
        except ValueError as exc:
            caught.append(str(exc))

    env.process(watcher(env))
    env.run()
    assert caught == ["inner failure"]


def test_yield_non_event_is_an_error():
    env = Environment()

    def proc(env):
        yield 42  # type: ignore[misc]

    env.process(proc(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_wakes_process_with_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def interrupter(env, victim):
        yield env.timeout(3.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(3.0, "wake up")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_many_processes_deterministic_order():
    """Two identical runs produce the identical completion order."""

    def run_once():
        env = Environment()
        order = []

        def proc(env, i):
            yield env.timeout((i * 7) % 5)
            yield env.timeout((i * 3) % 4)
            order.append(i)

        for i in range(50):
            env.process(proc(env, i))
        env.run()
        return order

    assert run_once() == run_once()


def test_event_factory_returns_pending_event():
    env = Environment()
    ev = env.event()
    assert isinstance(ev, Event)
    assert not ev.triggered
    assert not ev.processed


def test_defer_runs_after_events_already_queued_at_now():
    """defer() is the fabric's batching primitive: the callback must see
    every event already scheduled at the current timestamp."""
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))

    def at_one(_timer):
        order.append("timer")
        env.defer(lambda _t: order.append("deferred"))

    env.call_at(1.0, at_one)
    env.run()
    # The deferred callback fired at t=1.0, after both same-time events.
    assert order == ["timer", "a", "b", "deferred"]


def test_defer_is_cancellable():
    env = Environment()
    fired = []
    timer = env.defer(lambda _t: fired.append(True))
    timer.cancel()
    env.run()
    assert not fired
