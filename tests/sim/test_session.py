"""Tests for SimSession construction, wiring, and spec validation."""

import math

import pytest

from repro.cluster import ClusterSpec
from repro.network import NetworkSpec
from repro.sim import (
    NullTracer,
    RecordingTracer,
    SessionConfigError,
    SimSession,
    check_session_specs,
)


def test_default_session_builds_full_stack():
    session = SimSession()
    assert session.env.now == 0.0
    assert session.now == 0.0
    assert session.cluster.spec == ClusterSpec.paper_testbed()
    assert session.net.fabric.env is session.env
    assert session.accountant.cluster is session.cluster
    assert session.power_model is not None


def test_session_tracer_reaches_every_layer():
    tracer = RecordingTracer()
    session = SimSession(tracer=tracer)
    assert session.env.tracer is tracer
    assert all(core.tracer is tracer for core in session.cluster.cores)


def test_session_defaults_to_ambient_tracer():
    from repro.sim.trace import use_tracer

    assert isinstance(SimSession().tracer, NullTracer)
    tracer = RecordingTracer()
    with use_tracer(tracer):
        assert SimSession().tracer is tracer
    assert isinstance(SimSession().tracer, NullTracer)


def test_session_context_manager_closes_tracer():
    class Closeable(RecordingTracer):
        closed = False

        def close(self):
            self.closed = True

    tracer = Closeable()
    with SimSession(tracer=tracer) as session:
        assert session.tracer is tracer
    assert tracer.closed


def test_check_session_specs_accepts_defaults():
    assert check_session_specs(ClusterSpec(), NetworkSpec()) == []


def test_racked_cluster_with_flat_switch_rejected():
    cluster = ClusterSpec(nodes=8, racks=2)
    network = NetworkSpec(switch_oversubscription=4.0)
    problems = check_session_specs(cluster, network)
    assert any("switch_oversubscription" in p for p in problems)
    with pytest.raises(SessionConfigError) as excinfo:
        SimSession(cluster_spec=cluster, network_spec=network)
    assert "racks" in str(excinfo.value)


def test_racked_cluster_without_uplink_capacity_rejected():
    cluster = ClusterSpec(nodes=8, racks=2)
    network = NetworkSpec(rack_uplink_factor=0.0)
    problems = check_session_specs(cluster, network)
    assert any("rack_uplink_factor" in p for p in problems)


def test_memory_bandwidth_below_copy_bandwidth_rejected():
    network = NetworkSpec(mem_bw_node=1e9, shm_bw=4.5e9)
    problems = check_session_specs(ClusterSpec(), network)
    assert any("memory bandwidth" in p for p in problems)
    with pytest.raises(SessionConfigError):
        SimSession(network_spec=network)


def test_validate_false_skips_spec_checks():
    network = NetworkSpec(mem_bw_node=1e9, shm_bw=4.5e9)
    session = SimSession(network_spec=network, validate=False)
    assert session.network_spec is network


def test_racked_cluster_with_infinite_switch_accepted():
    cluster = ClusterSpec(nodes=8, racks=2)
    network = NetworkSpec()
    assert math.isinf(network.switch_oversubscription)
    session = SimSession(cluster_spec=cluster, network_spec=network)
    assert session.cluster_spec.racks == 2


def test_session_runs_a_job():
    """A session threads through MpiJob and the whole stack simulates."""
    from repro.mpi import MpiJob

    session = SimSession()
    job = MpiJob(8, session=session)

    def program(ctx):
        yield from ctx.alltoall(4096)

    result = job.run(program)
    assert result.duration_s > 0
    assert session.now == pytest.approx(result.duration_s)
    assert job.env is session.env
    assert job.cluster is session.cluster
