"""Tests for Store, Resource and Signal primitives."""

import pytest

from repro.sim import Environment, Resource, Signal, Store


# ---------------------------------------------------------------- Store
def test_store_fifo_order():
    env = Environment()
    got = []

    def producer(env, store):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1.0)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    store = Store(env)
    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    stamps = []

    def consumer(env, store):
        item = yield store.get()
        stamps.append((env.now, item))

    def producer(env, store):
        yield env.timeout(4.0)
        yield store.put("late")

    store = Store(env)
    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert stamps == [(4.0, "late")]


def test_store_capacity_blocks_put():
    env = Environment()
    stamps = []

    def producer(env, store):
        yield store.put("a")
        yield store.put("b")  # blocks: capacity 1
        stamps.append(env.now)

    def consumer(env, store):
        yield env.timeout(2.0)
        yield store.get()

    store = Store(env, capacity=1)
    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert stamps == [2.0]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len_tracks_items():
    env = Environment()
    store = Store(env)

    def proc(env, store):
        yield store.put(1)
        yield store.put(2)

    env.process(proc(env, store))
    env.run()
    assert len(store) == 2


# ---------------------------------------------------------------- Resource
def test_resource_grants_in_fifo_order():
    env = Environment()
    order = []

    def worker(env, res, tag, hold):
        req = res.request()
        yield req
        order.append(("acq", tag, env.now))
        yield env.timeout(hold)
        req.release()

    res = Resource(env, capacity=1)
    env.process(worker(env, res, "a", 2.0))
    env.process(worker(env, res, "b", 1.0))
    env.process(worker(env, res, "c", 1.0))
    env.run()
    assert order == [("acq", "a", 0.0), ("acq", "b", 2.0), ("acq", "c", 3.0)]


def test_resource_capacity_two_runs_concurrently():
    env = Environment()
    acquired = []

    def worker(env, res, tag):
        with res.request() as req:
            yield req
            acquired.append((tag, env.now))
            yield env.timeout(1.0)

    res = Resource(env, capacity=2)
    for tag in ("a", "b", "c"):
        env.process(worker(env, res, tag))
    env.run()
    assert acquired == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_release_idempotent():
    env = Environment()
    res = Resource(env, capacity=1)

    def proc(env, res):
        req = res.request()
        yield req
        req.release()
        req.release()  # second release is a no-op

    env.process(proc(env, res))
    env.run()
    assert res.count == 0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = []

    def holder(env, res):
        req = res.request()
        yield req
        yield env.timeout(5.0)
        req.release()

    def impatient(env, res):
        yield env.timeout(1.0)
        req = res.request()  # waits behind holder
        req.release()  # gives up before grant
        yield env.timeout(0.0)

    def patient(env, res):
        yield env.timeout(2.0)
        req = res.request()
        yield req
        granted.append(env.now)
        req.release()

    env.process(holder(env, res))
    env.process(impatient(env, res))
    env.process(patient(env, res))
    env.run()
    assert granted == [5.0]


# ---------------------------------------------------------------- Signal
def test_signal_releases_all_waiters():
    env = Environment()
    woken = []

    def waiter(env, sig, tag):
        value = yield sig.wait()
        woken.append((tag, env.now, value))

    def firer(env, sig):
        yield env.timeout(3.0)
        sig.fire("go")

    sig = Signal(env)
    env.process(waiter(env, sig, "a"))
    env.process(waiter(env, sig, "b"))
    env.process(firer(env, sig))
    env.run()
    assert woken == [("a", 3.0, "go"), ("b", 3.0, "go")]


def test_signal_rearms_after_fire():
    env = Environment()
    woken = []

    def waiter(env, sig):
        yield sig.wait()
        woken.append(env.now)
        yield sig.wait()
        woken.append(env.now)

    def firer(env, sig):
        yield env.timeout(1.0)
        sig.fire()
        yield env.timeout(1.0)
        sig.fire()

    sig = Signal(env)
    env.process(waiter(env, sig))
    env.process(firer(env, sig))
    env.run()
    assert woken == [1.0, 2.0]
