"""Warm-worker path: substrate cache, hermetic cells, instrumented sweeps.

The tentpole claims of the one-execution-path refactor:

* the per-process substrate cache rebuilds the frozen
  (cluster, network, power) spec triple at most once per unique
  signature, however many cells share it;
* ``execute_cell`` is hermetic — ambient ``use_governor``/``use_faults``
  scopes in the calling process never leak into a cell;
* governed and faulted cells flow through ``run_cells`` with their
  configs reconstructed in-worker, and ``jobs=4``, ``jobs=1`` and a
  warm-cache rerun produce byte-identical results *including* the
  GovernorReport/FaultReport payloads and captured metrics.
"""

import json

import pytest

from repro.bench import instrument_cells, use_runner
from repro.bench.experiments import plan_ext_faults, plan_ext_governor_alltoall
from repro.cluster.specs import ClusterSpec
from repro.runner import (
    ResultCache,
    SUBSTRATE_COUNTERS,
    SweepCell,
    SweepStats,
    clear_memo,
    clear_substrate_cache,
    execute_cell,
    run_cells,
    shutdown_pool,
)


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_memo()
    clear_substrate_cache()
    yield
    clear_memo()
    clear_substrate_cache()
    shutdown_pool()


def _collective(nbytes, n_ranks=16, cluster=None, **extra):
    params = {"op": "alltoall", "nbytes": nbytes, "n_ranks": n_ranks}
    if cluster is not None:
        params["cluster"] = cluster.to_dict()
    params.update(extra)
    return SweepCell("warm-test", "collective", params,
                     label=f"alltoall/{nbytes}")


def _dicts(results):
    out = []
    for r in results:
        d = r.to_dict()
        d.pop("wall_time_s")  # host-side noise, not simulated content
        out.append(d)
    return out


# -- substrate cache --------------------------------------------------
def test_substrate_rebuilt_once_per_unique_signature():
    small = ClusterSpec.with_shape(nodes=2, sockets=2, cores_per_socket=4)
    cells = [
        _collective(1 << 10),                  # default testbed
        _collective(2 << 10),                  # same signature
        _collective(1 << 10, cluster=small),   # second signature
        _collective(2 << 10, cluster=small),   # same again
        _collective(4 << 10),                  # first signature again
    ]
    run_cells(cells, jobs=1)
    assert SUBSTRATE_COUNTERS["misses"] == 2   # one rebuild per signature
    assert SUBSTRATE_COUNTERS["hits"] == 3
    assert SUBSTRATE_COUNTERS["rebuild_s"] >= 0.0


def test_substrate_counters_reach_stats():
    stats = SweepStats()
    run_cells([_collective(1 << 10), _collective(2 << 10)], jobs=1,
              stats=stats)
    assert stats.substrate_misses == 1
    assert stats.substrate_hits == 1


# -- hermetic execution -----------------------------------------------
def test_execute_cell_shadows_ambient_scopes():
    """A cell without governor/fault params must simulate none, even
    when the calling process has ambient scopes active."""
    from repro.faults import parse_fault_spec, use_faults
    from repro.runtime import GovernorConfig, use_governor

    cell = _collective(1 << 10)
    bare = execute_cell(cell)
    with use_governor(GovernorConfig()), \
            use_faults(parse_fault_spec("degrade:factor=0.5", seed=1)):
        shadowed = execute_cell(cell)
    assert shadowed.governor is None
    assert shadowed.faults is None
    assert _dicts([shadowed]) == _dicts([bare])


# -- instrumented cells through every layer ---------------------------
def _governed_faulted_cells():
    from repro.faults import parse_fault_spec
    from repro.runtime import GovernorConfig, GovernorPolicy

    governor = GovernorConfig(policy=GovernorPolicy("countdown")).to_dict()
    faults = parse_fault_spec(
        "degrade:factor=0.6,frac=0.25;noise:period=500us,pulse=20us,frac=0.25",
        seed=7,
    ).to_dict()
    bare = [_collective(n, compute_s=200e-6) for n in (1 << 10, 4 << 10)]
    cells, gov_idx, fault_idx, _ = instrument_cells(bare, governor, faults)
    assert gov_idx == (0, 1) and fault_idx == (0, 1)
    return cells


def test_instrumented_cells_jobs4_and_warm_cache_identical(tmp_path,
                                                           monkeypatch):
    from repro.obs.metrics import MetricsRegistry, use_metrics
    from repro.runner import pool

    monkeypatch.setattr(pool, "_available_cpus", lambda: 4)
    cache = ResultCache(tmp_path)
    cells = _governed_faulted_cells()

    def sweep(jobs):
        clear_memo()
        registry = MetricsRegistry()
        with use_metrics(registry):
            results = run_cells(cells, jobs=jobs, cache=cache)
        return (
            _dicts(results),
            json.dumps(registry.snapshot(), sort_keys=True),
        )

    inline, inline_metrics = sweep(1)
    stats = SweepStats()
    clear_memo()
    registry = MetricsRegistry()
    with use_metrics(registry):
        parallel = run_cells(cells, jobs=4, cache=cache, stats=stats)
    parallel_metrics = json.dumps(registry.snapshot(), sort_keys=True)
    warm, warm_metrics = sweep(1)

    # Reports travelled: every instrumented result carries both payloads.
    for r in inline:
        assert r["governor"] is not None and r["governor"]["drops"] >= 0
        assert r["faults"] is not None and r["faults"]["seed"] == 7
    assert _dicts(parallel) == inline
    assert warm == inline
    assert parallel_metrics == inline_metrics
    assert warm_metrics == inline_metrics


def test_use_runner_overlay_collects_reports_and_replays_from_cache(tmp_path):
    """CLI semantics: use_runner(governor=..., faults=...) overlays plan
    cells, collects their report dicts, and a warm-cache rerun collects
    the identical reports without executing anything."""
    from repro.faults import parse_fault_spec
    from repro.runtime import GovernorConfig, GovernorPolicy

    governor = GovernorConfig(policy=GovernorPolicy("countdown")).to_dict()
    faults = parse_fault_spec("degrade:factor=0.5,frac=0.5", seed=3).to_dict()
    cache = ResultCache(tmp_path)

    def sweep():
        clear_memo()
        from repro.bench import fig2c_reduce_phases

        stats = SweepStats()
        with use_runner(jobs=1, cache=cache, stats=stats,
                        governor=governor, faults=faults) as scope:
            headers, rows, _ = fig2c_reduce_phases(sizes=(4, 64))
        return scope, stats, json.dumps([headers, [list(r) for r in rows]],
                                        sort_keys=True)

    cold_scope, cold_stats, cold_series = sweep()
    warm_scope, warm_stats, warm_series = sweep()

    assert cold_stats.unique_executed == 2
    assert warm_stats.cache_hits == 2 and warm_stats.executed == 0
    assert warm_series == cold_series
    assert len(cold_scope.governor_reports) == 2
    assert len(cold_scope.fault_reports) == 2
    assert warm_scope.governor_reports == cold_scope.governor_reports
    assert warm_scope.fault_reports == cold_scope.fault_reports
    assert all(r["seed"] == 3 for r in cold_scope.fault_reports)


def test_plan_declared_configs_win_over_overlay():
    """ext-governor/ext-faults pin per-cell configs; a CLI overlay must
    not clobber them (it only fills cells that carry none)."""
    from repro.runtime import GovernorConfig, GovernorPolicy

    # A theta no plan cell uses, so the overlay is distinguishable from
    # the plan's own policy grid.
    overlay = GovernorConfig(policy=GovernorPolicy("predictive"),
                             theta_s=123e-6).to_dict()
    plan = plan_ext_governor_alltoall(sizes=(64 << 10,), iterations=1,
                                     n_ranks=16)
    cells, gov_idx, _, _ = instrument_cells(plan.cells, overlay, None)
    for i, cell in enumerate(cells):
        if i in gov_idx:
            assert cell.params["governor"] == overlay
        else:
            assert cell.params["governor"] != overlay


def test_ext_plans_execute_via_runner_with_in_worker_reconstruction():
    """Every instrumented ext plan runs through run_cells and its results
    carry the in-worker-reconstructed reports."""
    plan = plan_ext_faults(sizes=(64 << 10,), iterations=1, n_ranks=16)
    stats = SweepStats()
    results = run_cells(plan.cells, jobs=1, stats=stats)
    assert stats.unique_executed == len(plan.cells)
    faulted = [r for r in results if r.faults is not None]
    governed = [r for r in results if r.governor is not None]
    assert faulted and governed  # the mild column + the governed schemes
    headers, rows, _ = plan.assemble(results)
    assert len(rows) == len(plan.cells)
