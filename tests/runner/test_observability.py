"""Observability through the runner: --jobs N == --jobs 1, cache round-trip.

The regression this file pins down: ambient --trace/--profile/--metrics
scopes used to be silently lost under ``--jobs N`` (module globals do
not propagate into pool workers).  The runner now captures each cell's
payload where it runs and replays payloads in submit order, so the
observed stream is a function of the input cell sequence alone.
"""

import json

import pytest

from repro.bench.profile import SelfProfile
from repro.obs import CaptureConfig, MetricsRegistry, use_metrics
from repro.runner import ResultCache, SweepCell, cache_key, clear_memo, execute_cell, run_cells
from repro.sim.trace import RecordingTracer, use_tracer


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _cells():
    mk = lambda nbytes: SweepCell(
        experiment="obs-test", kind="collective",
        params={"op": "alltoall", "nbytes": nbytes, "n_ranks": 8,
                "mode": "none"},
        label=f"a2a/{nbytes}",
    )
    # Includes a duplicate cell: its payload must replay exactly once.
    return [mk(4096), mk(8192), mk(4096)]


def _observe(jobs, cache=None):
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry), SelfProfile() as prof:
        run_cells(_cells(), jobs=jobs, cache=cache)
    records = [(r.t, r.type, json.dumps(r.data, sort_keys=True))
               for r in tracer.records]
    snapshot = json.dumps(registry.snapshot(), sort_keys=True)
    samples = [(s.n_ranks, s.sim_time_s, s.events_processed)
               for s in prof.samples]
    return records, snapshot, samples


def test_jobs4_records_match_jobs1():
    records1, snap1, samples1 = _observe(jobs=1)
    clear_memo()
    records4, snap4, samples4 = _observe(jobs=4)
    assert records1, "the traced sweep must produce records"
    assert records4 == records1          # same records, same order
    assert snap4 == snap1                # metrics byte-identical
    assert samples4 == samples1          # profile sees the same jobs


def test_warm_cache_replays_identically(tmp_path):
    cache = ResultCache(tmp_path)
    records_cold, snap_cold, samples_cold = _observe(jobs=2, cache=cache)
    clear_memo()
    records_warm, snap_warm, samples_warm = _observe(jobs=2, cache=cache)
    assert cache.hits > 0, "second sweep must be served from disk"
    assert records_warm == records_cold
    assert snap_warm == snap_cold
    # Profile samples replay too; wall_time_s reflects the original
    # execution, but the simulated fields are identical.
    assert samples_warm == samples_cold


def test_execute_cell_seals_payload():
    cell = _cells()[0]
    result = execute_cell(cell, CaptureConfig(trace=True, metrics=True))
    assert result.metrics is not None
    assert result.metrics["records"]
    assert result.metrics["metrics"]["counters"]["net.flows_started"] > 0
    # And the payload survives the CellResult dict round-trip (= cache).
    from repro.runner import CellResult

    clone = CellResult.from_dict(
        json.loads(json.dumps(result.to_dict()))
    )
    assert clone.metrics == result.metrics


def test_uncaptured_execution_attaches_no_payload():
    result = execute_cell(_cells()[0])
    assert result.metrics is None


def test_capture_changes_cache_key_only_when_on():
    cell = _cells()[0]
    assert cache_key(cell) == cache_key(cell, CaptureConfig())
    captured = cache_key(cell, CaptureConfig(trace=True))
    assert captured != cache_key(cell)
    assert captured != cache_key(cell, CaptureConfig(metrics=True))


def test_runner_without_scopes_captures_nothing():
    results = run_cells(_cells(), jobs=1)
    assert all(r.metrics is None for r in results)


def test_simulated_outputs_unchanged_by_capture():
    plain = run_cells(_cells(), jobs=1)
    clear_memo()
    with use_tracer(RecordingTracer()):
        observed = run_cells(_cells(), jobs=1)
    for p, o in zip(plain, observed):
        assert p.duration_s == o.duration_s
        assert p.energy_j == o.energy_j
