"""Content-addressed cache: key derivation and the on-disk store."""

import json

from repro.runner import (
    CellResult,
    ResultCache,
    SweepCell,
    cache_key,
    environment_signature,
)
from repro.runner.cache import CACHE_SCHEMA


def _cell(experiment="test", label="", **overrides):
    params = {"op": "alltoall", "nbytes": 1024, "n_ranks": 16}
    params.update(overrides)
    return SweepCell(experiment, "collective", params, label=label)


# -- key derivation ---------------------------------------------------
def test_key_is_stable_and_hex():
    key = cache_key(_cell())
    assert key == cache_key(_cell())
    assert len(key) == 64
    int(key, 16)  # valid hex


def test_key_ignores_experiment_and_label():
    """fig9 and table1 request the same app runs — they must share
    entries, so provenance fields stay out of the key."""
    assert cache_key(_cell(experiment="fig9", label="a")) == cache_key(
        _cell(experiment="table1", label="b")
    )


def test_key_sensitive_to_params():
    assert cache_key(_cell(nbytes=1024)) != cache_key(_cell(nbytes=2048))
    assert cache_key(_cell(n_ranks=16)) != cache_key(_cell(n_ranks=32))


def test_key_ignores_param_insertion_order():
    a = SweepCell("t", "collective", {"op": "bcast", "nbytes": 64, "n_ranks": 8})
    b = SweepCell("t", "collective", {"n_ranks": 8, "nbytes": 64, "op": "bcast"})
    assert cache_key(a) == cache_key(b)


def test_environment_signature_pins_testbed_and_schema():
    sig = environment_signature()
    assert sig["schema"] == CACHE_SCHEMA
    # The implicit inputs every cell closes over: a recalibration of any
    # of these must invalidate old entries.
    assert set(sig) >= {"version", "cluster", "network", "power"}
    json.dumps(sig)  # must itself be canonicalisable


# -- the disk store ---------------------------------------------------
def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    cell = _cell()
    key = cache_key(cell)
    result = CellResult(duration_s=1.0, energy_j=2.0, extra={"m": 3})

    assert cache.get(key) is None  # cold
    cache.put(key, cell, result)
    assert cache.get(key) == result
    assert cache.stats() == {
        "hits": 1, "misses": 1, "writes": 1, "write_errors": 0,
    }


def test_entries_are_sharded_by_key_prefix(tmp_path):
    cache = ResultCache(tmp_path)
    cell = _cell()
    key = cache_key(cell)
    cache.put(key, cell, CellResult())
    entry = tmp_path / key[:2] / f"{key}.json"
    assert entry.is_file()
    # Entry carries provenance for humans poking at the cache dir.
    payload = json.loads(entry.read_text())
    assert payload["key"] == key
    assert payload["spec"] == cell.spec()


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cell = _cell()
    key = cache_key(cell)
    cache.put(key, cell, CellResult(duration_s=1.0))
    (tmp_path / key[:2] / f"{key}.json").write_text("{not json")
    assert cache.get(key) is None
    assert cache.misses == 1


def test_unwritable_cache_degrades_silently(tmp_path):
    # Root of the cache is a *file*: every mkdir/replace fails with
    # OSError.  put() must swallow it — a broken cache dir can make the
    # sweep slower, never make it fail.
    blocker = tmp_path / "blocked"
    blocker.write_text("")
    cache = ResultCache(blocker)
    cell = _cell()
    cache.put(cache_key(cell), cell, CellResult())
    assert cache.writes == 0
    assert cache.get(cache_key(cell)) is None


def test_default_cache_dir_env_override(tmp_path, monkeypatch):
    from repro.runner.cache import default_cache_dir

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
    assert default_cache_dir() == tmp_path / "override"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro"
