"""End-to-end determinism: experiments at --jobs 4 == --jobs 1.

The acceptance claim of the parallel runner: for a governed experiment
and a fault-perturbed experiment, the JSON-serialised result series
produced with four worker processes is byte-identical to the inline
series.  Cells carry their governor config and fault-plan seed inside
the spec, so a worker process reconstructs exactly the substrate the
inline path builds.
"""

import json

import pytest

from repro.bench import extension_faults_governor, extension_governor_alltoall, use_runner
from repro.runner import clear_memo


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _series(experiment_fn, jobs, **kwargs):
    """Run an experiment through the runner and canonicalise its rows."""
    with use_runner(jobs=jobs, cache=None):
        headers, rows, _notes = experiment_fn(**kwargs)
    return json.dumps(
        {"headers": headers, "rows": [list(r) for r in rows]},
        sort_keys=True,
    )


def test_governor_experiment_jobs4_matches_jobs1():
    kwargs = {"sizes": (64 << 10,), "iterations": 2, "n_ranks": 32}
    inline = _series(extension_governor_alltoall, 1, **kwargs)
    clear_memo()  # jobs=4 must recompute, not replay the memo
    parallel = _series(extension_governor_alltoall, 4, **kwargs)
    assert parallel == inline


def test_fault_experiment_jobs4_matches_jobs1():
    kwargs = {"sizes": (64 << 10,), "iterations": 2, "n_ranks": 32}
    inline = _series(extension_faults_governor, 1, **kwargs)
    clear_memo()
    parallel = _series(extension_faults_governor, 4, **kwargs)
    assert parallel == inline
