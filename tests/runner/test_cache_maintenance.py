"""Cache maintenance: disk_stats and gc (the `repro cache` backend)."""

import os
import time

from repro.runner import CellResult, ResultCache, SweepCell, cache_key


def _cell(nbytes, experiment="maint"):
    return SweepCell(
        experiment, "collective",
        {"op": "alltoall", "nbytes": nbytes, "n_ranks": 16, "mode": "none"},
    )


def _result():
    return CellResult(duration_s=1.0, energy_j=1.0)


def _fill(cache, n, experiment="maint"):
    # Key by content: vary nbytes per experiment too, or the entries of
    # different experiments would collide (provenance is not keyed).
    base = 1024 if experiment in ("maint", "expA") else 1 << 20
    keys = []
    for i in range(n):
        cell = _cell(base * (i + 1), experiment=experiment)
        key = cache_key(cell)
        cache.put(key, cell, _result())
        keys.append(key)
    return keys


def test_disk_stats_counts_entries_and_experiments(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 3, experiment="expA")
    _fill(cache, 2, experiment="expB")
    stats = cache.disk_stats()
    assert stats["entries"] == 5
    assert stats["corrupt"] == 0
    assert stats["by_experiment"] == {"expA": 3, "expB": 2}
    assert stats["total_bytes"] > 0


def test_disk_stats_on_missing_root(tmp_path):
    stats = ResultCache(tmp_path / "nope").disk_stats()
    assert stats["entries"] == 0


def test_gc_removes_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, 2)
    victim = cache._path(keys[0])
    victim.write_text("{torn")
    report = cache.gc()
    assert report["removed"]["corrupt"] == 1
    assert report["kept"] == 1
    assert not victim.exists()
    assert cache.get(keys[1]) is not None


def test_gc_max_age_evicts_old_entries(tmp_path):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, 3)
    old = cache._path(keys[0])
    past = time.time() - 10 * 86400
    os.utime(old, (past, past))
    report = cache.gc(max_age_s=86400.0)
    assert report["removed"]["expired"] == 1
    assert report["kept"] == 2
    assert not old.exists()


def test_gc_max_size_evicts_oldest_first(tmp_path):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, 4)
    # Age the first two so they are the eviction candidates.
    for i, key in enumerate(keys[:2]):
        past = time.time() - (100 - i)
        path = cache._path(key)
        os.utime(path, (past, past))
    total = cache.disk_stats()["total_bytes"]
    per_entry = total // 4
    report = cache.gc(max_size_bytes=per_entry * 2 + 1)
    assert report["removed"]["evicted"] == 2
    assert not cache._path(keys[0]).exists()
    assert not cache._path(keys[1]).exists()
    assert cache.get(keys[2]) is not None


def test_gc_dry_run_removes_nothing(tmp_path):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, 3)
    report = cache.gc(max_age_s=0.0, dry_run=True)
    assert report["dry_run"] is True
    assert report["removed_total"] == 3
    assert all(cache.get(k) is not None for k in keys)


def test_gc_sweeps_stale_tmp_files(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 1)
    shard_dir = next(tmp_path.iterdir())
    stale = shard_dir / ".tmp-abandoned.json"
    stale.write_text("{}")
    past = time.time() - 7200
    os.utime(stale, (past, past))
    fresh = shard_dir / ".tmp-inflight.json"
    fresh.write_text("{}")
    report = cache.gc()
    assert report["removed"]["tmp"] == 1
    assert not stale.exists()
    assert fresh.exists()  # possibly a live writer — left alone


def test_contains_probe(tmp_path):
    cache = ResultCache(tmp_path)
    (key,) = _fill(cache, 1)
    assert cache.contains(key)
    assert not cache.contains("0" * 64)
    # contains() does not touch hit/miss accounting
    assert cache.hits == 0 and cache.misses == 0


def test_contains_rejects_torn_entries_so_put_can_repair(tmp_path):
    """A bare exists() would let a corrupt entry block the write-through
    forever; the validity probe must read torn/truncated files as
    absent, and a fresh put() must repair them."""
    cache = ResultCache(tmp_path)
    (key,) = _fill(cache, 1)
    path = cache._path(key)
    for torn in (b"", b"{torn", b"not json at all", b'{"key": "x"'):
        path.write_bytes(torn)
        assert not cache.contains(key), torn
    cache.put(key, _cell(1024), _result())
    assert cache.contains(key)
    assert cache.get(key) is not None


def test_put_failure_degrades_to_no_cache_and_is_counted(tmp_path):
    """An unwritable store (here: the root path is taken by a regular
    file, so no shard directory can ever be created) must degrade to
    cache-off — counted in stats, never raised to the sweep."""
    root = tmp_path / "occupied"
    root.write_text("not a directory")
    cache = ResultCache(root)
    cell = _cell(1024)
    for _ in range(2):
        cache.put(cache_key(cell), cell, _result())
    assert cache.writes == 0
    assert cache.write_errors == 2
    assert cache.stats()["write_errors"] == 2
    assert not cache.probe_writable()


def test_gc_precedence_property(tmp_path):
    """Randomized mixes of corrupt / expired / fresh entries: gc must
    always remove corrupt ones first (regardless of age), then expired
    ones, then evict oldest-first only as far as the size budget needs
    — and survivors are exactly the newest fresh entries."""
    import random

    rng = random.Random(7)
    now = time.time()
    for trial in range(5):
        root = tmp_path / f"trial{trial}"
        cache = ResultCache(root)
        keys = _fill(cache, 8)
        paths = [cache._path(k) for k in keys]
        # Deterministic, distinct ages (newest-first by index).
        for i, path in enumerate(paths):
            mtime = now - 100.0 * (i + 1)
            os.utime(path, (mtime, mtime))
        labels = ["corrupt"] * 2 + ["expired"] * 2 + ["fresh"] * 4
        rng.shuffle(labels)
        by_label = {"corrupt": [], "expired": [], "fresh": []}
        for path, label in zip(paths, labels):
            by_label[label].append(path)
            if label == "corrupt":
                path.write_bytes(b"{torn")
                os.utime(path, (now, now))  # corrupt beats being newest
            elif label == "expired":
                mtime = now - 10_000.0
                os.utime(path, (mtime, mtime))
        entry_size = max(p.stat().st_size for p in by_label["fresh"])
        keep = rng.randint(0, 4)
        report = cache.gc(
            max_age_s=5000.0, max_size_bytes=keep * entry_size, now=now
        )
        assert report["removed"]["corrupt"] == 2
        assert report["removed"]["expired"] == 2
        assert report["removed"]["evicted"] == 4 - keep
        assert report["kept"] == keep
        survivors = {p for p in paths if p.exists()}
        # Oldest-first eviction keeps the newest fresh entries (lowest
        # index = newest mtime).
        expected = set(sorted(
            by_label["fresh"],
            key=lambda p: p.stat().st_mtime if p.exists() else 0,
            reverse=True,
        )[:keep]) if keep else set()
        assert survivors == expected


def test_gc_tolerates_entries_vanishing_mid_scan(tmp_path):
    """A concurrent gc/writer may unlink an entry between the directory
    scan and the open/unlink: the sweep must neither throw nor
    miscount."""
    cache = ResultCache(tmp_path)
    keys = _fill(cache, 3)
    vanish = cache._path(keys[1])

    class Racer(ResultCache):
        def iter_entries(self):
            for path, st in ResultCache.iter_entries(self):
                if path == vanish and path.exists():
                    os.unlink(path)  # the other process got there first
                yield path, st

    report = Racer(tmp_path).gc(max_age_s=1e9)
    # The vanished entry is neither corrupt nor removed-by-us.
    assert report["removed_total"] == 0
    assert report["kept"] == 2
    assert cache.get(keys[0]) is not None
    assert cache.get(keys[2]) is not None
