"""Cache maintenance: disk_stats and gc (the `repro cache` backend)."""

import os
import time

from repro.runner import CellResult, ResultCache, SweepCell, cache_key


def _cell(nbytes, experiment="maint"):
    return SweepCell(
        experiment, "collective",
        {"op": "alltoall", "nbytes": nbytes, "n_ranks": 16, "mode": "none"},
    )


def _result():
    return CellResult(duration_s=1.0, energy_j=1.0)


def _fill(cache, n, experiment="maint"):
    # Key by content: vary nbytes per experiment too, or the entries of
    # different experiments would collide (provenance is not keyed).
    base = 1024 if experiment in ("maint", "expA") else 1 << 20
    keys = []
    for i in range(n):
        cell = _cell(base * (i + 1), experiment=experiment)
        key = cache_key(cell)
        cache.put(key, cell, _result())
        keys.append(key)
    return keys


def test_disk_stats_counts_entries_and_experiments(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 3, experiment="expA")
    _fill(cache, 2, experiment="expB")
    stats = cache.disk_stats()
    assert stats["entries"] == 5
    assert stats["corrupt"] == 0
    assert stats["by_experiment"] == {"expA": 3, "expB": 2}
    assert stats["total_bytes"] > 0


def test_disk_stats_on_missing_root(tmp_path):
    stats = ResultCache(tmp_path / "nope").disk_stats()
    assert stats["entries"] == 0


def test_gc_removes_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, 2)
    victim = cache._path(keys[0])
    victim.write_text("{torn")
    report = cache.gc()
    assert report["removed"]["corrupt"] == 1
    assert report["kept"] == 1
    assert not victim.exists()
    assert cache.get(keys[1]) is not None


def test_gc_max_age_evicts_old_entries(tmp_path):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, 3)
    old = cache._path(keys[0])
    past = time.time() - 10 * 86400
    os.utime(old, (past, past))
    report = cache.gc(max_age_s=86400.0)
    assert report["removed"]["expired"] == 1
    assert report["kept"] == 2
    assert not old.exists()


def test_gc_max_size_evicts_oldest_first(tmp_path):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, 4)
    # Age the first two so they are the eviction candidates.
    for i, key in enumerate(keys[:2]):
        past = time.time() - (100 - i)
        path = cache._path(key)
        os.utime(path, (past, past))
    total = cache.disk_stats()["total_bytes"]
    per_entry = total // 4
    report = cache.gc(max_size_bytes=per_entry * 2 + 1)
    assert report["removed"]["evicted"] == 2
    assert not cache._path(keys[0]).exists()
    assert not cache._path(keys[1]).exists()
    assert cache.get(keys[2]) is not None


def test_gc_dry_run_removes_nothing(tmp_path):
    cache = ResultCache(tmp_path)
    keys = _fill(cache, 3)
    report = cache.gc(max_age_s=0.0, dry_run=True)
    assert report["dry_run"] is True
    assert report["removed_total"] == 3
    assert all(cache.get(k) is not None for k in keys)


def test_gc_sweeps_stale_tmp_files(tmp_path):
    cache = ResultCache(tmp_path)
    _fill(cache, 1)
    shard_dir = next(tmp_path.iterdir())
    stale = shard_dir / ".tmp-abandoned.json"
    stale.write_text("{}")
    past = time.time() - 7200
    os.utime(stale, (past, past))
    fresh = shard_dir / ".tmp-inflight.json"
    fresh.write_text("{}")
    report = cache.gc()
    assert report["removed"]["tmp"] == 1
    assert not stale.exists()
    assert fresh.exists()  # possibly a live writer — left alone


def test_contains_probe(tmp_path):
    cache = ResultCache(tmp_path)
    (key,) = _fill(cache, 1)
    assert cache.contains(key)
    assert not cache.contains("0" * 64)
    # contains() does not touch hit/miss accounting
    assert cache.hits == 0 and cache.misses == 0
