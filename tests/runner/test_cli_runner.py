"""CLI surface of the runner: --jobs/--cache-dir/--no-cache/--refresh
flags and the `bench-report` command."""

import io

import pytest

from repro.cli import main
from repro.runner import clear_memo


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    # Sweep stats land in ./results; keep them (and the cache) in tmp.
    monkeypatch.chdir(tmp_path)
    clear_memo()
    yield
    clear_memo()


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_experiment_jobs_stdout_identical(tmp_path):
    """--jobs 2 must not change a single byte of experiment output."""
    code1, one = run_cli("experiment", "fig2c", "--jobs", "1", "--no-cache")
    clear_memo()
    code2, two = run_cli("experiment", "fig2c", "--jobs", "2", "--no-cache")
    assert code1 == code2 == 0
    assert one == two


def test_cache_warm_run_hits_and_matches(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    code1, cold = run_cli("experiment", "fig2c", "--cache-dir", str(cache_dir))
    clear_memo()  # second run must be served by the *disk* layer
    code2, warm = run_cli("experiment", "fig2c", "--cache-dir", str(cache_dir))
    assert code1 == code2 == 0
    assert cold == warm
    # The runner summary goes to stderr precisely so stdout stays
    # byte-comparable; the warm run must report a full hit rate there.
    err = capsys.readouterr().err
    assert "5 cache hits" in err


def test_refresh_skips_cache_reads(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    run_cli("experiment", "fig2c", "--cache-dir", str(cache_dir))
    clear_memo()
    run_cli("experiment", "fig2c", "--cache-dir", str(cache_dir), "--refresh")
    err = capsys.readouterr().err
    assert "0 cache hits" in err.splitlines()[-2] + err.splitlines()[-1]


def test_governed_experiment_honors_jobs_and_cache(tmp_path, capsys):
    """--governor rides the runner now: --jobs 2 and a warm-cache rerun
    must both reproduce the cold inline stdout byte-for-byte, including
    the governor summary line."""
    cache_dir = tmp_path / "cache"
    argv = ("experiment", "fig2c", "--governor", "countdown",
            "--cache-dir", str(cache_dir))
    code1, cold = run_cli(*argv, "--jobs", "1")
    clear_memo()
    code2, jobs2 = run_cli(*argv, "--jobs", "2")
    clear_memo()
    code3, warm = run_cli(*argv, "--jobs", "1")
    assert code1 == code2 == code3 == 0
    assert "governor[countdown]" in cold
    assert jobs2 == cold
    assert warm == cold
    err = capsys.readouterr().err
    assert "cache hits" in err


def test_faulted_experiment_honors_jobs_and_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    argv = ("experiment", "fig2c", "--faults", "degrade:factor=0.5",
            "--fault-seed", "3", "--cache-dir", str(cache_dir))
    code1, cold = run_cli(*argv, "--jobs", "1")
    clear_memo()
    code2, jobs2 = run_cli(*argv, "--jobs", "2")
    clear_memo()
    code3, warm = run_cli(*argv, "--jobs", "1")
    assert code1 == code2 == code3 == 0
    assert "faults[seed=3]" in cold
    assert jobs2 == cold
    assert warm == cold


def test_governed_osu_reports_through_runner(tmp_path):
    """osu cells carry the governor config and the summary line reflects
    the reconstructed in-worker reports (warm rerun identical)."""
    cache_dir = tmp_path / "cache"
    argv = ("osu", "alltoall", "--size", "64K", "--governor", "countdown",
            "--cache-dir", str(cache_dir))
    code1, cold = run_cli(*argv)
    clear_memo()
    code2, warm = run_cli(*argv)
    assert code1 == code2 == 0
    assert "governor[countdown]" in cold
    assert warm == cold


def test_bench_report_renders_last_sweep(tmp_path):
    run_cli("experiment", "fig2c", "--no-cache")
    code, text = run_cli("bench-report")
    assert code == 0
    assert "fig2c" in text
    assert "p50" in text and "p95" in text
    assert "hit rate" in text


def test_bench_report_without_stats_fails_cleanly(tmp_path):
    code, text = run_cli("bench-report", "--results-dir", str(tmp_path / "none"))
    assert code == 1
    assert "no sweep recorded" in text.lower()
