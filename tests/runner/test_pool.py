"""Parallel executor: ordering, memo/dedupe, refresh, stats, fallback."""

import pytest

from repro.runner import (
    ResultCache,
    SweepCell,
    SweepStats,
    cache_key,
    clear_memo,
    resolve_jobs,
    run_cells,
)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


def _cells(sizes, op="alltoall", n_ranks=16):
    return [
        SweepCell(
            "pool-test",
            "collective",
            {"op": op, "nbytes": n, "n_ranks": n_ranks},
            label=f"{op}/{n}",
        )
        for n in sizes
    ]


# -- resolve_jobs -----------------------------------------------------
def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(None, default=3) == 3
    assert resolve_jobs(5, default=3) == 5
    monkeypatch.setenv("REPRO_JOBS", "7")
    assert resolve_jobs(None, default=3) == 7
    assert resolve_jobs(2, default=3) == 2  # explicit beats env
    monkeypatch.setenv("REPRO_JOBS", "banana")
    assert resolve_jobs(None, default=3) == 3  # garbage env ignored
    assert resolve_jobs(0) == 1  # clamps


# -- ordering & memoisation -------------------------------------------
def test_results_in_input_order():
    cells = _cells([4 << 10, 1 << 10, 16 << 10])
    results = run_cells(cells, jobs=1)
    # Bigger message => strictly longer simulated duration; order must
    # follow the *input* order, not size or completion order.
    assert results[1].duration_s < results[0].duration_s < results[2].duration_s


def test_memo_serves_repeat_sweeps():
    cells = _cells([1 << 10, 2 << 10])
    stats1 = SweepStats(experiment="first")
    first = run_cells(cells, jobs=1, stats=stats1)
    stats2 = SweepStats(experiment="second")
    second = run_cells(cells, jobs=1, stats=stats2)
    assert stats1.unique_executed == 2 and stats1.memo_hits == 0
    assert stats2.memo_hits == 2 and stats2.executed == 0
    assert [r.to_dict() for r in first] == [r.to_dict() for r in second]


def test_duplicate_cells_execute_once():
    cell = _cells([1 << 10])[0]
    stats = SweepStats()
    results = run_cells([cell, cell, cell], jobs=1, stats=stats)
    assert stats.cells_total == 3
    assert stats.unique_executed == 1
    assert results[0] is results[1] is results[2]


# -- disk cache interplay ---------------------------------------------
def test_cache_hit_skips_execution(tmp_path):
    cells = _cells([1 << 10])
    cache = ResultCache(tmp_path)
    run_cells(cells, jobs=1, cache=cache)
    clear_memo()  # force the disk layer
    stats = SweepStats()
    run_cells(cells, jobs=1, cache=cache, stats=stats)
    assert stats.cache_hits == 1
    assert stats.executed == 0
    assert stats.hit_rate == 1.0


def test_refresh_reexecutes_and_rewrites(tmp_path):
    cells = _cells([1 << 10])
    cache = ResultCache(tmp_path)
    run_cells(cells, jobs=1, cache=cache)
    assert cache.writes == 1
    stats = SweepStats()
    run_cells(cells, jobs=1, cache=cache, refresh=True, stats=stats)
    assert stats.memo_hits == 0 and stats.cache_hits == 0
    assert stats.unique_executed == 1
    assert cache.writes == 2  # fresh result written through


def test_cached_result_identical_to_fresh(tmp_path):
    cells = _cells([2 << 10])
    cache = ResultCache(tmp_path)
    fresh = run_cells(cells, jobs=1, cache=cache)[0].to_dict()
    clear_memo()
    cached = run_cells(cells, jobs=1, cache=cache)[0].to_dict()
    assert cached == fresh  # wall_time_s round-trips through the entry


# -- parallel == inline -----------------------------------------------
def test_parallel_results_bit_identical_to_inline(tmp_path, monkeypatch):
    """The tentpole determinism claim at the library level: jobs=4
    through a real warm-worker pool reassembles to exactly the
    inline results."""
    from repro.runner import pool, shutdown_pool

    monkeypatch.setattr(pool, "_available_cpus", lambda: 4)
    cells = _cells([1 << 10, 4 << 10, 16 << 10, 64 << 10])
    inline = run_cells(cells, jobs=1)
    clear_memo()
    stats = SweepStats()
    try:
        parallel = run_cells(cells, jobs=4, stats=stats)
    finally:
        shutdown_pool()
    assert not stats.fell_back_inline  # the pool really ran
    assert not stats.jobs_clamped
    assert stats.jobs_effective == 4
    assert stats.batches > 0
    assert _sim_dicts(inline) == _sim_dicts(parallel)


def test_jobs_clamp_to_available_cpus(monkeypatch, caplog):
    """jobs beyond the usable CPU count clamp (to inline on one CPU)
    with a warning instead of paying pool overhead for a slowdown."""
    import logging

    from repro.runner import pool

    monkeypatch.setattr(pool, "_available_cpus", lambda: 1)
    cells = _cells([1 << 10, 2 << 10])
    stats = SweepStats()
    with caplog.at_level(logging.WARNING, logger="repro.runner"):
        results = run_cells(cells, jobs=4, stats=stats)
    assert stats.jobs == 4
    assert stats.jobs_effective == 1
    assert stats.jobs_clamped
    assert not stats.fell_back_inline  # deliberate clamp, not a failure
    assert len(results) == 2
    assert any("clamping" in rec.message for rec in caplog.records)


def test_warm_pool_reused_across_run_cells(monkeypatch):
    """The pool persists between run_cells calls: the second sweep's
    batches land on already-warm workers."""
    from repro.runner import pool, shutdown_pool

    monkeypatch.setattr(pool, "_available_cpus", lambda: 2)
    try:
        first = SweepStats()
        run_cells(_cells([1 << 10, 2 << 10, 4 << 10, 8 << 10]), jobs=2,
                  stats=first)
        if first.fell_back_inline:  # pragma: no cover - sandboxed fork
            return
        second = SweepStats()
        run_cells(_cells([3 << 10, 5 << 10, 6 << 10, 7 << 10]), jobs=2,
                  stats=second)
        assert second.worker_reuse > 0
    finally:
        shutdown_pool()


def _sim_dicts(results):
    """Simulated content only — wall_time_s is host-side noise."""
    dicts = [r.to_dict() for r in results]
    for d in dicts:
        d.pop("wall_time_s")
    return dicts


def test_stats_timings_cover_executed_cells():
    cells = _cells([1 << 10, 2 << 10])
    stats = SweepStats(experiment="timed")
    run_cells(cells, jobs=1, stats=stats)
    assert len(stats.timings) == 2
    assert all(wall >= 0 for _label, wall in stats.timings)
    assert "timed" in stats.one_line()
