"""Cell specs: validation, normalisation, purity, round-trips."""

import pickle

import pytest

from repro.runner import CellResult, SweepCell, execute_cell


def _tiny_cell(**overrides):
    params = {
        "op": "alltoall",
        "nbytes": 16 << 10,
        "n_ranks": 16,
        "mode": "none",
        "iterations": 1,
        "progress": "polling",
        "keep_segments": False,
    }
    params.update(overrides)
    return SweepCell("test", "collective", params, label="tiny")


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown cell kind"):
        SweepCell("test", "quantum", {})


def test_non_plain_params_rejected():
    with pytest.raises(TypeError, match="plain data"):
        SweepCell("test", "collective", {"op": object()})


def test_params_normalised_tuples_become_lists():
    a = SweepCell("test", "mixed", {"sizes": (1, 2, 3), "n_ranks": 8})
    b = SweepCell("test", "mixed", {"sizes": [1, 2, 3], "n_ranks": 8})
    assert a.params == b.params
    assert a.spec() == b.spec()


def test_spec_excludes_provenance():
    """experiment/label are display-only; two experiments sharing a cell
    must produce the same spec (and therefore the same cache key)."""
    a = _tiny_cell()
    b = SweepCell("other-experiment", "collective", a.params, label="renamed")
    assert a.spec() == b.spec()
    assert "experiment" not in a.spec()
    assert "label" not in a.spec()


def test_cell_pickles():
    cell = _tiny_cell()
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell


def test_cell_result_round_trip():
    result = CellResult(
        duration_s=1.5,
        energy_j=2.5,
        average_power_w=3.5,
        phase_times={"comm": 1.0},
        dvfs_transitions=4,
        throttle_transitions=5,
        governor={"drops": 1},
        faults={"injected": 2},
        app={"name": "ft.B.64"},
        extra={"metric": 9.0},
        wall_time_s=0.25,
    )
    clone = CellResult.from_dict(result.to_dict())
    assert clone == result


def test_cell_result_from_dict_ignores_unknown_keys():
    data = CellResult(duration_s=1.0).to_dict()
    data["future_field"] = "whatever"
    assert CellResult.from_dict(data).duration_s == 1.0


def test_execute_cell_is_deterministic():
    """Same spec, fresh substrate each time => identical simulated output
    (wall_time_s is host noise and explicitly excluded)."""
    first = execute_cell(_tiny_cell()).to_dict()
    second = execute_cell(_tiny_cell()).to_dict()
    first.pop("wall_time_s")
    second.pop("wall_time_s")
    assert first == second
    assert first["duration_s"] > 0
    assert first["energy_j"] > 0


def test_execute_cell_with_faults_is_deterministic():
    """The fault plan's seed lives inside the spec, so perturbed cells
    are exactly as reproducible as quiet ones."""
    from repro.faults import parse_fault_spec

    faults = parse_fault_spec("noise:period=500us,pulse=20us,frac=0.25", seed=11)
    cell_kwargs = {"faults": faults.to_dict(), "compute_s": 100e-6}
    first = execute_cell(_tiny_cell(**cell_kwargs)).to_dict()
    second = execute_cell(_tiny_cell(**cell_kwargs)).to_dict()
    first.pop("wall_time_s")
    second.pop("wall_time_s")
    assert first == second
    assert first["faults"] is not None


def _multijob_cell(policy=None):
    from repro.cluster.specs import ClusterSpec

    params = {
        "jobs": [
            {"n_ranks": 16, "node_offset": 0, "op": "alltoall",
             "nbytes": 64 << 10, "iterations": 2},
            {"n_ranks": 16, "node_offset": 2, "op": "allreduce",
             "nbytes": 1 << 10, "iterations": 2, "compute_s": 5e-3},
        ],
        "cluster": ClusterSpec.with_shape(
            nodes=4, sockets=2, cores_per_socket=4
        ).to_dict(),
        "progress": "polling",
    }
    if policy is not None:
        params["arbiter"] = {"policy": policy, "power_cap_w": 4 * 250.0}
    return SweepCell("test", "multijob", params, label="two-jobs")


def test_execute_multijob_cell_attributes_energy_exactly():
    result = execute_cell(_multijob_cell(policy="redistribute"))
    jobs = result.extra["jobs"]
    assert len(jobs) == 2
    assert jobs[0]["node_offset"] == 0 and jobs[1]["node_offset"] == 2
    # Makespan is the slower job; per-job energy + residual = total.
    assert result.duration_s == max(j["duration_s"] for j in jobs)
    attributed = sum(j["energy_j"] for j in jobs)
    assert attributed + result.extra["residual_energy_j"] == result.energy_j
    assert result.arbiter is not None
    assert result.arbiter["policy"] == "redistribute"


def test_execute_multijob_cell_is_deterministic():
    first = execute_cell(_multijob_cell(policy="redistribute")).to_dict()
    second = execute_cell(_multijob_cell(policy="redistribute")).to_dict()
    first.pop("wall_time_s")
    second.pop("wall_time_s")
    assert first == second


def test_multijob_cell_without_arbiter_runs_uncapped():
    result = execute_cell(_multijob_cell())
    assert result.arbiter is None
    assert result.duration_s > 0
