"""Driver equivalence: local pool vs subprocess shards."""

import json
import subprocess
import sys

import pytest

from repro.campaign import (
    CampaignSpec,
    LocalPoolDriver,
    SubprocessShardDriver,
    run_campaign,
)
from repro.runner import ResultCache

SPEC = {
    "name": "t",
    "sweeps": [
        {
            "name": "grid",
            "matrix": {"nbytes": [1024, 4096], "mode": ["none", "proposed"]},
            "params": {"op": "alltoall", "n_ranks": 16},
        }
    ],
}


def test_shard_assignment_is_stable():
    keys = [f"{i * 2654435761:08x}"[-8:].ljust(64, "0") for i in range(64)]
    first = [SubprocessShardDriver.shard_of(k, 3) for k in keys]
    assert first == [SubprocessShardDriver.shard_of(k, 3) for k in keys]
    assert set(first) == {0, 1, 2}


def test_shard_driver_rejects_bad_counts():
    with pytest.raises(ValueError):
        SubprocessShardDriver(shards=0)


def test_shard_driver_requires_cache():
    driver = SubprocessShardDriver(shards=2)
    with pytest.raises(ValueError, match="shared result cache"):
        driver.execute([], [], None, 1, None, {})


def test_shard_driver_matches_local_driver(tmp_path):
    """Same spec through both drivers: same manifests, same results."""
    spec = CampaignSpec.from_dict(SPEC)

    local = run_campaign(
        spec, campaign_dir=tmp_path / "local", jobs=1,
        cache=ResultCache(tmp_path / "cache-local"),
        driver=LocalPoolDriver(),
    )
    shards = run_campaign(
        spec, campaign_dir=tmp_path / "shards", jobs=1,
        cache=ResultCache(tmp_path / "cache-shards"),
        driver=SubprocessShardDriver(shards=2),
        refresh=True,  # the process memo must not satisfy the shard run
    )

    assert local.ok and shards.ok
    assert (tmp_path / "local" / "campaign.json").read_bytes() == (
        tmp_path / "shards" / "campaign.json"
    ).read_bytes()

    cache_local = ResultCache(tmp_path / "cache-local")
    cache_shards = ResultCache(tmp_path / "cache-shards")
    for key in local.plan.keys:
        a, b = cache_local.get(key), cache_shards.get(key)
        assert a is not None and b is not None
        da, db = a.to_dict(), b.to_dict()
        da.pop("wall_time_s"), db.pop("wall_time_s")  # measured, not simulated
        assert da == db

    tele = json.loads((tmp_path / "shards" / "telemetry.json").read_text())
    assert tele["driver"] == "shards"
    assert sum(s["cells"] for s in tele["shards"]) == len(shards.plan)
    assert all(s["returncode"] == 0 for s in tele["shards"])


def test_crashed_shard_is_salvaged(tmp_path, monkeypatch):
    """A shard that dies leaves its cells to the parent's inline path."""
    spec = CampaignSpec.from_dict(SPEC)
    def dead_shard(self, cells_file, out_file, cache):
        return subprocess.Popen(
            [sys.executable, "-c", "import sys; sys.exit(3)"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )

    monkeypatch.setattr(SubprocessShardDriver, "_spawn", dead_shard)
    result = run_campaign(
        spec, campaign_dir=tmp_path / "camp", jobs=1,
        cache=ResultCache(tmp_path / "cache"),
        driver=SubprocessShardDriver(shards=2),
        refresh=True,
        artifacts=False,
    )
    assert result.ok  # salvage executed every cell inline
    assert result.telemetry["shard_recovered"] == 4
    assert all(s["returncode"] == 3 for s in result.telemetry["shards"])
