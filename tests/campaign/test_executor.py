"""Executor semantics: probe-first resume, manifests, artifacts."""

import json

from repro.campaign import (
    CampaignManifest,
    CampaignSpec,
    run_campaign,
    spec_digest,
)
from repro.runner import ResultCache

SPEC = {
    "name": "t",
    "sweeps": [
        {
            "name": "grid",
            "matrix": {"nbytes": [1024, 4096], "mode": ["none", "proposed"]},
            "params": {"op": "alltoall", "n_ranks": 16},
        }
    ],
}


def _run(tmp_path, spec=None, subdir="camp", **kwargs):
    spec = CampaignSpec.from_dict(spec or SPEC)
    kwargs.setdefault("cache", ResultCache(tmp_path / "cache"))
    return run_campaign(
        spec, campaign_dir=tmp_path / subdir, jobs=1, **kwargs
    )


def test_cold_run_executes_everything(tmp_path):
    result = _run(tmp_path)
    assert result.ok
    assert result.telemetry["executed"] == 4
    assert result.telemetry["probe_hits"] == 0
    assert result.manifest.counts() == {"pending": 0, "done": 4, "failed": 0}


def test_rerun_executes_nothing(tmp_path):
    _run(tmp_path)
    result = _run(tmp_path)
    assert result.ok
    assert result.telemetry["executed"] == 0
    assert result.telemetry["probe_hits"] == 4
    assert result.telemetry["hit_rate"] == 1.0
    assert result.telemetry["resumed"] is True


def test_manifest_byte_identical_across_complete_reruns(tmp_path):
    _run(tmp_path)
    first = (tmp_path / "camp" / "campaign.json").read_bytes()
    _run(tmp_path)
    assert (tmp_path / "camp" / "campaign.json").read_bytes() == first


def test_partial_resume_executes_only_missing(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    result = _run(tmp_path, cache=cache)
    # Evict one entry: exactly that cell must re-execute.
    victim = result.plan.keys[2]
    cache._path(victim).unlink()
    again = _run(tmp_path, cache=cache)
    assert again.telemetry["executed"] == 1
    assert again.telemetry["probe_hits"] == 3


def test_resume_repairs_corrupted_cache_entry(tmp_path):
    """A torn store entry (killed writer, truncating filesystem) must
    read as absent at resume — that cell re-executes and the write-
    through repairs the entry, instead of the probe trusting the
    corrupt file forever."""
    cache = ResultCache(tmp_path / "cache")
    result = _run(tmp_path, cache=cache)
    victim = result.plan.keys[1]
    cache._path(victim).write_bytes(b"{torn")
    again = _run(tmp_path, cache=cache)
    assert again.ok
    assert again.telemetry["executed"] == 1
    assert again.telemetry["probe_hits"] == 3
    # The re-executed cell wrote the entry back whole.
    repaired = ResultCache(tmp_path / "cache")
    assert repaired.contains(victim)
    assert repaired.get(victim) is not None


def test_refresh_reexecutes_everything(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _run(tmp_path, cache=cache)
    result = _run(tmp_path, cache=cache, refresh=True)
    assert result.telemetry["executed"] == 4
    assert result.telemetry["probe_hits"] == 0


def test_spec_change_starts_fresh_manifest(tmp_path):
    _run(tmp_path)
    changed = dict(SPEC)
    changed["sweeps"] = [dict(SPEC["sweeps"][0])]
    changed["sweeps"][0] = dict(changed["sweeps"][0])
    changed["sweeps"][0]["matrix"] = {"nbytes": [1024], "mode": ["none"]}
    result = _run(tmp_path, spec=changed)
    assert result.telemetry["resumed"] is False
    # The one remaining cell was already cached by the first campaign.
    assert result.telemetry["probe_hits"] == 1
    assert result.telemetry["executed"] == 0


def test_manifest_records_spec_digest(tmp_path):
    result = _run(tmp_path)
    manifest = CampaignManifest.load(tmp_path / "camp" / "campaign.json")
    assert manifest is not None
    assert manifest.spec_digest == spec_digest(result.spec)
    assert [e.key for e in manifest.cells] == result.plan.keys


def test_failed_cell_marked_and_artifacts_skipped(tmp_path):
    bad = {
        "name": "t",
        "experiments": ["models"],
        "sweeps": [
            {
                "name": "poison",
                "matrix": {"mode": ["none", "warp-speed"]},
                "params": {"op": "alltoall", "n_ranks": 16, "nbytes": 1024},
            }
        ],
        "artifacts": ["models"],
    }
    result = _run(tmp_path, spec=bad)
    assert not result.ok
    counts = result.manifest.counts()
    assert counts["failed"] == 1
    assert counts["done"] == 5  # 4 models cells + the good grid cell
    (entry,) = [e for e in result.manifest.cells if e.status == "failed"]
    assert "warp-speed" in (entry.error or "")
    assert result.artifacts == []
    assert not (tmp_path / "camp" / "artifacts").exists()


def test_artifacts_rendered_from_cache(tmp_path):
    spec = {"name": "t", "experiments": ["models"]}
    result = _run(tmp_path, spec=spec)
    assert result.ok
    (record,) = result.artifacts
    assert record["experiment"] == "models"
    data = json.loads((tmp_path / "camp" / "artifacts" / "models.json").read_text())
    assert data["rows"]


def test_artifacts_byte_identical_to_direct_experiment_run(tmp_path):
    """The campaign's artifact JSON matches `repro experiment models
    --json` byte for byte — same functions, same schema, warm cache."""
    from pathlib import Path

    from repro import bench, cli
    from repro.bench import save_json

    spec = {"name": "t", "experiments": ["models"]}
    cache = ResultCache(tmp_path / "cache")
    result = _run(tmp_path, spec=spec, cache=cache)
    assert result.ok

    with bench.use_runner(jobs=1, cache=cache):
        headers, rows, notes = cli.EXPERIMENTS["models"]()
    direct = Path(save_json("models", headers, rows, notes,
                            results_dir=str(tmp_path / "direct")))
    campaign_json = tmp_path / "camp" / "artifacts" / "models.json"
    assert campaign_json.read_bytes() == direct.read_bytes()


def test_telemetry_written(tmp_path):
    _run(tmp_path)
    tele = json.loads((tmp_path / "camp" / "telemetry.json").read_text())
    assert tele["campaign"] == "t"
    assert tele["cells_total"] == 4
    assert tele["driver"] == "local"
    assert "cell_wall_s" in tele


def test_stats_cover_probe_and_execution(tmp_path):
    _run(tmp_path)
    result = _run(tmp_path)
    assert result.stats.cells_total == 4
    assert result.stats.cache_hits >= 4
