"""CLI surface: campaign run/status/report and cache stats/gc."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps({
        "name": "clitest",
        "sweeps": [{
            "name": "grid",
            "matrix": {"nbytes": [1024, 4096], "mode": ["none", "proposed"]},
            "params": {"op": "alltoall", "n_ranks": 16},
        }],
    }))
    return path


@pytest.fixture(autouse=True)
def _in_tmp(tmp_path, monkeypatch):
    """Keep results/ and default dirs inside the test sandbox."""
    monkeypatch.chdir(tmp_path)


def test_campaign_run_and_rerun(tmp_path, spec_file):
    args = ("campaign", "run", str(spec_file),
            "--dir", str(tmp_path / "camp"),
            "--cache-dir", str(tmp_path / "cache"), "--jobs", "1")
    code, text = run_cli(*args)
    assert code == 0
    assert "campaign clitest" in text
    manifest = json.loads((tmp_path / "camp" / "campaign.json").read_text())
    assert manifest["counts"]["done"] == 4

    code, text = run_cli(*args)
    assert code == 0
    tele = json.loads((tmp_path / "camp" / "telemetry.json").read_text())
    assert tele["executed"] == 0
    assert tele["hit_rate"] == 1.0


def test_campaign_run_bad_spec(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"name": "x", "bogus": 1}))
    code, text = run_cli("campaign", "run", str(bad))
    assert code == 2
    assert "bad campaign spec" in text


def test_campaign_status_before_and_after(tmp_path, spec_file):
    code, text = run_cli("campaign", "status", str(spec_file),
                         "--dir", str(tmp_path / "camp"))
    assert code == 1
    assert "no manifest" in text

    run_cli("campaign", "run", str(spec_file),
            "--dir", str(tmp_path / "camp"),
            "--cache-dir", str(tmp_path / "cache"), "--jobs", "1")
    code, text = run_cli("campaign", "status", str(spec_file),
                         "--dir", str(tmp_path / "camp"))
    assert code == 0
    assert "done" in text


def test_campaign_report(tmp_path, spec_file):
    code, text = run_cli("campaign", "report", str(spec_file),
                         "--dir", str(tmp_path / "camp"))
    assert code == 1
    assert "no telemetry" in text

    run_cli("campaign", "run", str(spec_file),
            "--dir", str(tmp_path / "camp"),
            "--cache-dir", str(tmp_path / "cache"), "--jobs", "1")
    code, text = run_cli("campaign", "report", str(spec_file),
                         "--dir", str(tmp_path / "camp"))
    assert code == 0
    assert "hit rate" in text
    assert "driver" in text


def test_campaign_run_shard_driver(tmp_path, spec_file):
    code, text = run_cli("campaign", "run", str(spec_file),
                         "--dir", str(tmp_path / "camp"),
                         "--cache-dir", str(tmp_path / "cache"),
                         "--driver", "shards", "--shards", "2", "--jobs", "1")
    assert code == 0
    tele = json.loads((tmp_path / "camp" / "telemetry.json").read_text())
    assert tele["driver"] == "shards"
    assert len(tele["shards"]) == 2


def test_cache_stats_and_gc(tmp_path, spec_file):
    cache_dir = tmp_path / "cache"
    run_cli("campaign", "run", str(spec_file),
            "--dir", str(tmp_path / "camp"),
            "--cache-dir", str(cache_dir), "--jobs", "1")

    code, text = run_cli("cache", "stats", "--cache-dir", str(cache_dir))
    assert code == 0
    assert "entries" in text
    assert "clitest:grid" in text

    code, text = run_cli("cache", "gc", "--cache-dir", str(cache_dir),
                         "--max-age", "0", "--dry-run")
    assert code == 0
    assert "would remove 4" in text
    assert len(list(cache_dir.glob("*/*.json"))) == 4

    code, text = run_cli("cache", "gc", "--cache-dir", str(cache_dir),
                         "--max-age", "0")
    assert code == 0
    assert "removed 4" in text
    assert not list(cache_dir.glob("*/*.json"))
