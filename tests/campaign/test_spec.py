"""Campaign specs: validation, loading, deterministic expansion."""

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignSpecError,
    expand,
    load_campaign,
    spec_digest,
)

GRID = {
    "name": "grid",
    "matrix": {"nbytes": [1024, 4096], "mode": ["none", "proposed"]},
    "params": {"op": "alltoall", "n_ranks": 16},
}


def _spec(**overrides):
    data = {"name": "t", "sweeps": [dict(GRID)]}
    data.update(overrides)
    return CampaignSpec.from_dict(data)


# -- validation -------------------------------------------------------
def test_unknown_spec_key_rejected():
    with pytest.raises(CampaignSpecError, match="unknown campaign keys"):
        CampaignSpec.from_dict({"name": "t", "bogus": 1})


def test_unknown_sweep_key_rejected():
    with pytest.raises(CampaignSpecError, match="unknown sweep keys"):
        CampaignSpec.from_dict(
            {"name": "t", "sweeps": [{"name": "g", "axes": {}}]}
        )


def test_empty_spec_rejected():
    with pytest.raises(CampaignSpecError, match="expands to nothing"):
        CampaignSpec.from_dict({"name": "t"})


def test_unknown_experiment_rejected():
    with pytest.raises(CampaignSpecError, match="unknown experiments"):
        CampaignSpec.from_dict({"name": "t", "experiments": ["fig99"]})


def test_artifacts_must_be_subset_of_experiments():
    with pytest.raises(CampaignSpecError, match="not in the campaign's"):
        CampaignSpec.from_dict(
            {"name": "t", "experiments": ["models"], "artifacts": ["fig2a"]}
        )


def test_artifacts_default_to_experiments():
    spec = CampaignSpec.from_dict({"name": "t", "experiments": ["models"]})
    assert spec.artifacts == ("models",)


def test_empty_axis_rejected():
    with pytest.raises(CampaignSpecError, match="non-empty list"):
        CampaignSpec.from_dict(
            {"name": "t", "sweeps": [{"name": "g", "matrix": {"op": []}}]}
        )


def test_duplicate_sweep_name_rejected():
    with pytest.raises(CampaignSpecError, match="duplicate sweep name"):
        CampaignSpec.from_dict(
            {"name": "t", "sweeps": [dict(GRID), dict(GRID)]}
        )


def test_bad_governor_policy_rejected():
    with pytest.raises(CampaignSpecError, match="bad governor policy"):
        _spec(governor="warp-speed")


def test_governor_string_normalises_to_config_dict():
    spec = _spec(governor="predictive")
    assert isinstance(spec.governor, dict)
    assert spec.governor["policy"] == "predictive"


# -- loading ----------------------------------------------------------
def test_load_json(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps({"name": "t", "sweeps": [GRID]}))
    spec = load_campaign(path)
    assert spec.name == "t"
    assert spec.grids[0].name == "grid"


def test_load_yaml(tmp_path):
    pytest.importorskip("yaml")
    path = tmp_path / "c.yaml"
    path.write_text(
        "name: t\n"
        "sweeps:\n"
        "  - name: grid\n"
        "    matrix:\n"
        "      nbytes: [1024, 4096]\n"
        "      mode: [none, proposed]\n"
        "    params: {op: alltoall, n_ranks: 16}\n"
    )
    assert spec_digest(load_campaign(path)) == spec_digest(_spec())


def test_load_missing_file_is_spec_error(tmp_path):
    with pytest.raises(CampaignSpecError, match="cannot read"):
        load_campaign(tmp_path / "nope.json")


def test_load_bad_json_is_spec_error(tmp_path):
    path = tmp_path / "c.json"
    path.write_text("{not json")
    with pytest.raises(CampaignSpecError, match="bad JSON"):
        load_campaign(path)


# -- expansion --------------------------------------------------------
def test_expansion_is_deterministic():
    plans = [expand(_spec()) for _ in range(3)]
    assert all(p.keys == plans[0].keys for p in plans)
    assert all(
        [c.to_dict() for c in p.cells]
        == [c.to_dict() for c in plans[0].cells]
        for p in plans
    )


def test_expansion_order_ignores_matrix_dict_order():
    """Axes iterate in sorted key order, not spec insertion order."""
    a = _spec()
    swapped = dict(GRID)
    swapped["matrix"] = {
        "mode": ["none", "proposed"], "nbytes": [1024, 4096]
    }
    b = CampaignSpec.from_dict({"name": "t", "sweeps": [swapped]})
    assert expand(a).keys == expand(b).keys


def test_grid_product_size_and_labels():
    plan = expand(_spec())
    assert len(plan) == 4
    assert plan.cells[0].label == "grid/mode=none/nbytes=1024"
    assert plan.cells[0].experiment == "t:grid"
    assert plan.cells[0].params["op"] == "alltoall"


def test_dict_axis_value_merges_params():
    grid = {
        "name": "g",
        "matrix": {"scale": [{"n_ranks": 16, "nbytes": 1024},
                             {"n_ranks": 32, "nbytes": 2048}]},
        "params": {"op": "alltoall", "mode": "none"},
    }
    plan = expand(CampaignSpec.from_dict({"name": "t", "sweeps": [grid]}))
    assert [c.params["n_ranks"] for c in plan.cells] == [16, 32]
    assert [c.params["nbytes"] for c in plan.cells] == [1024, 2048]
    assert all("scale" not in c.params for c in plan.cells)


def test_none_axis_value_deletes_key():
    grid = {
        "name": "g",
        "matrix": {"faults": [None, "degrade:frac=0.25,factor=0.5"]},
        "params": {"op": "alltoall", "mode": "none",
                   "n_ranks": 16, "nbytes": 1024},
    }
    plan = expand(CampaignSpec.from_dict({"name": "t", "sweeps": [grid]}))
    quiet, faulty = plan.cells
    assert "faults" not in quiet.params
    assert isinstance(faulty.params["faults"], dict)


def test_nodes_axis_becomes_cluster_override():
    grid = {
        "name": "g",
        "matrix": {"nodes": [4, 8]},
        "params": {"op": "alltoall", "mode": "none",
                   "nbytes": 1024, "ranks_per_node": 8},
    }
    plan = expand(CampaignSpec.from_dict({"name": "t", "sweeps": [grid]}))
    assert [c.params["cluster"]["nodes"] for c in plan.cells] == [4, 8]
    assert [c.params["n_ranks"] for c in plan.cells] == [32, 64]
    assert all("ranks_per_node" not in c.params for c in plan.cells)


def test_overlapping_experiments_deduplicate():
    """table1 and fig9 request the same CPMD runs — one execution each."""
    both = CampaignSpec.from_dict(
        {"name": "t", "experiments": ["fig9", "table1"]}
    )
    just_fig9 = CampaignSpec.from_dict({"name": "t", "experiments": ["fig9"]})
    plan = expand(both)
    assert plan.duplicates > 0
    assert len(plan) < len(expand(just_fig9)) * 2


def test_digest_stable_and_spec_sensitive():
    assert spec_digest(_spec()) == spec_digest(_spec())
    assert spec_digest(_spec()) != spec_digest(_spec(governor="predictive"))


def test_example_specs_load_and_expand():
    pytest.importorskip("yaml")
    from pathlib import Path

    examples = Path(__file__).parents[2] / "examples" / "campaigns"
    for name in ("smoke", "paper_quick", "paper_full"):
        plan = expand(load_campaign(examples / f"{name}.yaml"))
        assert len(plan) > 0
