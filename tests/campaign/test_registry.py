"""Registry completeness: the CLI, plan, and campaign layers agree.

Campaigns reach experiments through :data:`repro.bench.CELL_PLANS` while
the CLI reaches them through :data:`repro.cli.EXPERIMENTS`; a name in
one but not the other means a figure the campaign engine silently
cannot cover.  And every planned cell must survive the shard wire
format (``to_dict``/``from_dict``) without changing identity.
"""

from repro.bench import CELL_PLANS
from repro.cli import EXPERIMENTS
from repro.runner import SweepCell, cache_key


def test_every_cli_experiment_has_a_cell_plan():
    missing = sorted(set(EXPERIMENTS) - set(CELL_PLANS))
    assert not missing, (
        f"experiments without plan producers (campaigns cannot run "
        f"them): {missing}"
    )


def test_every_cell_plan_is_cli_reachable():
    orphaned = sorted(set(CELL_PLANS) - set(EXPERIMENTS))
    assert not orphaned, f"plans with no CLI experiment: {orphaned}"


def test_all_planned_cells_round_trip_the_wire_format():
    for name, producer in sorted(CELL_PLANS.items()):
        plan = producer()
        assert plan.cells, f"plan {name!r} expands to no cells"
        for cell in plan.cells:
            clone = SweepCell.from_dict(cell.to_dict())
            assert clone.to_dict() == cell.to_dict(), f"{name}: {cell.label}"
            assert cache_key(clone) == cache_key(cell), (
                f"{name}: wire format changes the cache key of {cell.label}"
            )


def test_plan_expansion_is_deterministic():
    for name, producer in sorted(CELL_PLANS.items()):
        a = [cache_key(c) for c in producer().cells]
        b = [cache_key(c) for c in producer().cells]
        assert a == b, f"plan {name!r} expands nondeterministically"
