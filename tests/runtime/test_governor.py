"""Governor policy tests: determinism guard, countdown drops/restores,
predictive pre-scaling, traffic restores, horizon interaction and the
ambient scope."""

import pytest

from repro.cluster.specs import ClusterSpec, ThrottleGranularity
from repro.collectives.power_control import T_FULL
from repro.mpi.job import MpiJob
from repro.mpi.p2p import ProgressMode
from repro.runtime import (
    Governor,
    GovernorConfig,
    GovernorPolicy,
    ambient_governor_scope,
    merge_reports,
    use_governor,
)
from repro.sim.session import SimSession

RANKS = 16
SPEC = ClusterSpec.with_shape(nodes=2, sockets=2, cores_per_socket=4)


def _mixed_program(ctx):
    yield from ctx.compute(200e-6)
    yield from ctx.alltoall(64 << 10)
    yield from ctx.bcast(16 << 10)
    yield from ctx.barrier()
    if ctx.rank == 0:
        yield from ctx.send(1, 64 << 10)
    elif ctx.rank == 1:
        yield from ctx.recv(0)
    yield from ctx.allreduce(32 << 10)


def _run(governor=None, progress=ProgressMode.POLLING, spec=SPEC, program=None):
    job = MpiJob(
        RANKS, cluster_spec=spec, progress=progress,
        keep_segments=True, governor=governor,
    )
    result = job.run(program or _mixed_program)
    return job, result


def _fingerprint(job, result):
    """Everything that must be bit-identical for the determinism guard."""
    return (
        result.duration_s,
        result.energy_j,
        tuple(result.rank_finish_times),
        job.env.events_processed,
        job.engine.messages_sent,
        tuple(
            (s.core_id, s.start, s.end, s.power_w)
            for s in result.accountant.segments
        ),
    )


# -- determinism guard (ISSUE satellite 1) ---------------------------------
@pytest.mark.parametrize("progress", [ProgressMode.POLLING, ProgressMode.BLOCKING])
def test_none_policy_is_bit_identical_to_no_governor(progress):
    """Policy `none` (tracing off) must not perturb the timeline at all:
    same event count, same energy, same per-core power segments."""
    baseline = _fingerprint(*_run(None, progress=progress))
    governed = _fingerprint(
        *_run(Governor(GovernorConfig(policy=GovernorPolicy.NONE)), progress=progress)
    )
    assert governed == baseline


def test_none_policy_still_observes_slack():
    gov = Governor(GovernorConfig(policy=GovernorPolicy.NONE))
    _run(gov)
    report = gov.finish_run()
    assert report.policy == "none"
    assert report.waits_observed > 0
    assert report.calls_observed > 0
    assert report.total_wait_s > 0
    # ...but never acts.
    assert report.drops == 0
    assert report.timers_armed == 0
    assert report.estimated_saving_j == 0.0


# -- countdown ---------------------------------------------------------------
def test_countdown_drops_and_restores_everything():
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN, theta_s=50e-6))
    job, _ = _run(gov)
    report = gov.report()
    assert report.timers_armed > 0
    assert report.drops > 0
    assert report.drops == report.restores
    assert report.estimated_saving_j > 0
    # Every core ends clean: unthrottled, at fmax.
    for core in job.cluster.cores:
        assert core.tstate == T_FULL
        assert core.frequency_ghz == core.spec.fmax


def test_countdown_saves_energy_at_bounded_latency_cost():
    _, base = _run(None)
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN))
    _, governed = _run(gov)
    assert governed.energy_j < base.energy_j
    assert governed.duration_s <= base.duration_s * 1.02


def test_countdown_theta_gates_the_drop():
    """A θ far above every wait length must never fire."""
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN, theta_s=10.0))
    _, _ = _run(gov)
    report = gov.report()
    assert report.timers_armed > 0
    assert report.drops == 0
    assert report.timers_cancelled == report.timers_armed


def test_countdown_socket_granularity_throttles_whole_sockets_only():
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN, theta_s=50e-6))
    job, _ = _run(gov)
    report = gov.report()
    # The paper's Nehalem throttles per socket; the governor must wait for
    # every core of a socket to be past θ, so socket throttles are rarer
    # than drops but do happen on this collective-heavy program.
    assert job.cluster.spec.node.cpu.throttle_granularity is ThrottleGranularity.SOCKET
    assert 0 < report.socket_throttles <= report.drops


def test_countdown_core_granularity_throttles_individually():
    spec = ClusterSpec.with_shape(
        nodes=2, sockets=2, cores_per_socket=4,
        granularity=ThrottleGranularity.CORE,
    )
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN, theta_s=50e-6))
    job, _ = _run(gov, spec=spec)
    report = gov.report()
    assert report.drops > 0
    assert report.socket_throttles == 0
    for core in job.cluster.cores:
        assert core.tstate == T_FULL


def test_countdown_drop_to_fmin_variant_restores_frequency():
    gov = Governor(
        GovernorConfig(policy=GovernorPolicy.COUNTDOWN, theta_s=50e-6, drop_to_fmin=True)
    )
    job, _ = _run(gov)
    assert gov.report().drops > 0
    for core in job.cluster.cores:
        assert core.frequency_ghz == core.spec.fmax


def test_traffic_restore_wakes_dropped_receiver():
    """A receiver that waits long past θ gets dropped; the governor must
    restore it the moment the (rendezvous) transfer starts so the flow's
    cpu_cap is not sampled against a throttled core."""

    def program(ctx):
        if ctx.rank == 0:
            # Receiver posts early and waits >> θ.
            yield from ctx.recv(1)
        elif ctx.rank == 1:
            yield from ctx.compute(5e-3)  # arrive late
            yield from ctx.send(0, 1 << 20)
        else:
            yield from ctx.compute(6e-3)  # keep socket-mates busy past it

    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN, theta_s=100e-6))
    spec = ClusterSpec.with_shape(
        nodes=2, sockets=2, cores_per_socket=4,
        granularity=ThrottleGranularity.CORE,
    )
    job, _ = _run(gov, spec=spec, program=program)
    report = gov.report()
    assert report.traffic_restores >= 1
    # The wake is paid for: the transfer absorbed a transition penalty.
    assert report.penalty_s > 0
    for core in job.cluster.cores:
        assert core.tstate == T_FULL


# -- predictive --------------------------------------------------------------
def test_predictive_prescales_large_collectives():
    gov = Governor(GovernorConfig(policy=GovernorPolicy.PREDICTIVE))
    job, _ = _run(gov)
    report = gov.report()
    assert report.prescales > 0
    # First-sight calls decide from the analytic model.
    assert report.cold_decisions > 0
    for core in job.cluster.cores:
        assert core.frequency_ghz == core.spec.fmax
        assert core.tstate == T_FULL


def test_predictive_skips_small_collectives():
    def program(ctx):
        for _ in range(4):
            yield from ctx.bcast(256)  # far below min_bytes

    gov = Governor(GovernorConfig(policy=GovernorPolicy.PREDICTIVE))
    _run(gov, program=program)
    assert gov.report().prescales == 0


def test_predictive_warm_history_drives_the_decision():
    """After warm-up the decision comes from measured durations, not the
    analytic fallback: cold_decisions stops growing."""

    def program(ctx):
        for _ in range(5):
            yield from ctx.alltoall(64 << 10)

    gov = Governor(GovernorConfig(policy=GovernorPolicy.PREDICTIVE))
    _run(gov, program=program)
    report = gov.report()
    assert report.prescales == 5 * RANKS  # every rank, every iteration
    # Only the warm-up window decided analytically; once the shared
    # history has warm_calls=2 samples the measured EWMA takes over.
    assert 0 < report.cold_decisions < report.prescales
    (key,) = report.monitor["call_history"]
    assert key.startswith("alltoall/2^")
    assert report.monitor["call_history"][key]["samples"] == 5 * RANKS


def test_predictive_beats_no_power_energy():
    _, base = _run(None)
    gov = Governor(GovernorConfig(policy=GovernorPolicy.PREDICTIVE))
    _, governed = _run(gov)
    assert governed.energy_j < base.energy_j


# -- session/job wiring ------------------------------------------------------
def test_session_owns_governor_and_binds_it():
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN))
    session = SimSession(cluster_spec=SPEC)
    assert session.governor is None
    session2 = SimSession(cluster_spec=SPEC, governor=gov)
    assert session2.governor is gov
    assert gov.session is session2


def test_governor_cannot_bind_twice():
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN))
    SimSession(cluster_spec=SPEC, governor=gov)
    with pytest.raises(ValueError):
        SimSession(cluster_spec=SPEC, governor=gov)


def test_job_rejects_governor_with_adopted_session():
    session = SimSession(cluster_spec=SPEC)
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN))
    with pytest.raises(ValueError):
        MpiJob(RANKS, session=session, governor=gov)


def test_ambient_scope_governs_every_job_and_collects_reports():
    config = GovernorConfig(policy=GovernorPolicy.COUNTDOWN, theta_s=50e-6)
    assert ambient_governor_scope() is None
    with use_governor(config) as scope:
        assert ambient_governor_scope() is scope
        _run(None)
        _run(None)
    assert ambient_governor_scope() is None
    assert len(scope.reports) == 2
    assert all(r.policy == "countdown" for r in scope.reports)
    merged = merge_reports(scope.reports)
    assert merged.drops == sum(r.drops for r in scope.reports)
    assert merged.drops > 0


def test_explicit_governor_wins_over_ambient_scope():
    explicit = Governor(GovernorConfig(policy=GovernorPolicy.NONE))
    with use_governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN)) as scope:
        session = SimSession(cluster_spec=SPEC, governor=explicit)
    assert session.governor is explicit
    assert scope.reports == []


# -- run(until) interaction (ISSUE satellite 2) ------------------------------
def test_cancelled_theta_timer_does_not_extend_bounded_run():
    """A governor θ timer armed at a wait and cancelled when the wait ends
    early must not keep a bounded run alive past the horizon, and must
    leave no pending work behind."""
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN, theta_s=10.0))
    job = MpiJob(RANKS, cluster_spec=SPEC, keep_segments=False, governor=gov)

    def program(ctx):
        yield from ctx.alltoall(64 << 10)

    finish = []

    def wrapper(ctx):
        yield from program(ctx)
        finish.append(ctx.env.now)

    for ctx in job.contexts:
        job.env.process(wrapper(ctx))
    job.env.run()
    # Every θ timer was cancelled (waits all ended below θ=10s): nothing
    # pending, and the clock sits at the last *real* event, not at
    # now+θ of some long-dead countdown.
    assert gov.report().timers_armed > 0
    assert gov.report().drops == 0
    assert job.env.peek() == float("inf")
    assert job.env.now == max(finish)


# -- finish_run penalty accounting (ISSUE regression) ------------------------
def _run_parked(gov, spec, parked_ranks):
    """Run a program where ``parked_ranks`` wait on a recv that never
    arrives while everyone else computes past θ, then drain the engine:
    the parked cores are still dropped when the run is sealed."""
    job = MpiJob(RANKS, cluster_spec=spec, keep_segments=False, governor=gov)

    def program(ctx):
        if ctx.rank in parked_ranks:
            yield from ctx.recv((ctx.rank + 1) % RANKS)  # never matched
        else:
            yield from ctx.compute(5e-3)

    for ctx in job.contexts:
        job.env.process(program(ctx))
    job.env.run()
    return job


def test_finish_run_charges_restore_penalty_core_granularity():
    """A program ending mid-drop must charge the same Odvfs/Othrottle an
    in-run restore pays — finish_run used to restore silently, so traces
    ending inside a wait under-reported penalty seconds."""
    spec = ClusterSpec.with_shape(
        nodes=2, sockets=2, cores_per_socket=4,
        granularity=ThrottleGranularity.CORE,
    )
    gov = Governor(GovernorConfig(
        policy=GovernorPolicy.COUNTDOWN, theta_s=100e-6, drop_to_fmin=True,
    ))
    job = _run_parked(gov, spec, parked_ranks={0})
    assert gov.drops == 1 and gov.restores == 0
    assert gov.penalty_s == 0.0

    core = job.affinity.core_of(0)
    report = gov.finish_run()
    assert report.restores == report.drops == 1
    # Exactly one throttle-up plus one DVFS ramp, nothing double-charged.
    assert report.penalty_s == pytest.approx(
        core.spec.throttle_latency_s + core.spec.dvfs_latency_s
    )
    # And the cluster ends clean despite the torn program.
    assert core.tstate == T_FULL
    assert core.frequency_ghz == core.spec.fmax


def test_finish_run_charges_throttled_socket_once():
    """Socket granularity: the force-restore claims each still-throttled
    socket exactly once (one Othrottle for the 4 dropped cores), the way
    wait_end does."""
    gov = Governor(GovernorConfig(policy=GovernorPolicy.COUNTDOWN, theta_s=100e-6))
    job = _run_parked(gov, SPEC, parked_ranks={0, 1, 2, 3})
    report_before = gov.report()
    assert report_before.drops == 4
    assert report_before.socket_throttles == 1

    core = job.affinity.core_of(0)
    report = gov.finish_run()
    assert report.restores == report.drops == 4
    assert report.penalty_s == pytest.approx(core.spec.throttle_latency_s)
    for rank in range(4):
        assert job.affinity.core_of(rank).tstate == T_FULL


def test_merge_reports_empty_is_none():
    assert merge_reports([]) is None


def test_config_validation():
    with pytest.raises(ValueError):
        GovernorConfig(theta_s=0.0)
    with pytest.raises(ValueError):
        GovernorConfig(predictive_gain=-1.0)
