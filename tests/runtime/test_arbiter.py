"""Cluster power-budget arbiter tests: config round-trip, uniform cap
enforcement, slack-driven redistribution across co-scheduled jobs,
exact per-job energy attribution, and the ambient scope."""

import pytest

from repro.cluster.specs import ClusterSpec
from repro.mpi.job import MpiJob
from repro.runtime import (
    ArbiterConfig,
    ArbiterPolicy,
    PowerArbiter,
    ambient_arbiter_scope,
    use_arbiter,
)
from repro.sim.session import SimSession

SPEC = ClusterSpec.with_shape(nodes=4, sockets=2, cores_per_socket=4)
CORES_PER_NODE = 8
#: Between the node's all-polling fmin demand (~225 W) and its fmax
#: demand (~287.5 W): the uniform split must clamp below fmax.
CAP_PER_NODE_W = 250.0


def _comm_program(ctx):
    for _ in range(2):
        yield from ctx.alltoall(64 << 10)


def _compute_program(ctx):
    for _ in range(3):
        yield from ctx.compute(10e-3)
        yield from ctx.allreduce(1 << 10)


def _single_job(arbiter=None, cap_w=None):
    if cap_w is not None:
        arbiter = PowerArbiter(ArbiterConfig(power_cap_w=cap_w))
    return MpiJob(
        SPEC.nodes * CORES_PER_NODE, cluster_spec=SPEC, arbiter=arbiter,
    )


def _two_job_session(policy, cap_w=SPEC.nodes * CAP_PER_NODE_W):
    arbiter = PowerArbiter(ArbiterConfig(
        policy=ArbiterPolicy(policy), power_cap_w=cap_w,
    ))
    session = SimSession(cluster_spec=SPEC, arbiter=arbiter)
    comm = MpiJob(2 * CORES_PER_NODE, session=session, node_offset=0)
    compute = MpiJob(2 * CORES_PER_NODE, session=session, node_offset=2)
    comm.launch(_comm_program)
    compute.launch(_compute_program)
    results = session.run_jobs([comm, compute])
    return session, results


# -- config ------------------------------------------------------------------
def test_config_round_trip():
    config = ArbiterConfig(
        policy=ArbiterPolicy.REDISTRIBUTE, power_cap_w=1000.0,
        interval_s=1e-3, slack_threshold_s=100e-6, ewma_alpha=0.5,
    )
    assert ArbiterConfig.from_dict(config.to_dict()) == config


def test_config_validation():
    with pytest.raises(ValueError):
        ArbiterConfig()  # cap unset
    with pytest.raises(ValueError):
        ArbiterConfig(power_cap_w=-1.0)
    with pytest.raises(ValueError):
        ArbiterConfig(power_cap_w=100.0, interval_s=0.0)
    with pytest.raises(ValueError):
        ArbiterConfig(power_cap_w=100.0, slack_threshold_s=0.0)


# -- uniform enforcement -----------------------------------------------------
def test_uniform_cap_clamps_every_node():
    base = _single_job().run(_compute_program)
    job = _single_job(cap_w=SPEC.nodes * CAP_PER_NODE_W)
    capped = job.run(_compute_program)
    report = job.session.arbiter.report()
    # One clamp per node, enforced at the kick tick, never re-raised.
    assert report.freq_changes == SPEC.nodes
    assert report.min_budget_w == report.max_budget_w == CAP_PER_NODE_W
    assert report.donated_j == 0.0
    # The clamp slows the compute phase and trims power.
    assert capped.duration_s > base.duration_s
    assert capped.average_power_w < base.average_power_w
    for core in job.cluster.cores:
        assert core.frequency_ghz < core.spec.fmax


def test_loose_cap_is_a_noop():
    base = _single_job().run(_compute_program)
    job = _single_job(cap_w=1e6)
    capped = job.run(_compute_program)
    assert job.session.arbiter.report().freq_changes == 0
    assert capped.duration_s == base.duration_s
    assert capped.energy_j == base.energy_j


def test_arbiter_binds_once():
    arbiter = PowerArbiter(ArbiterConfig(power_cap_w=1000.0))
    SimSession(cluster_spec=SPEC, arbiter=arbiter)
    with pytest.raises(ValueError):
        SimSession(cluster_spec=SPEC, arbiter=arbiter)


def test_job_rejects_arbiter_with_adopted_session():
    session = SimSession(cluster_spec=SPEC)
    with pytest.raises(ValueError):
        MpiJob(
            CORES_PER_NODE, session=session,
            arbiter=PowerArbiter(ArbiterConfig(power_cap_w=1000.0)),
        )


# -- redistribution across co-scheduled jobs ---------------------------------
def test_redistribute_donates_comm_slack_to_compute_job():
    session, results = _two_job_session("redistribute")
    report = session.arbiter.report()
    assert report.ticks > 0
    assert report.rebalances > 0
    assert report.donors_peak > 0
    assert report.donated_j > 0.0
    # Donor nodes floor at their fmin demand; critical nodes get more
    # than the uniform share (but the sum never exceeds the cap).
    assert report.min_budget_w < CAP_PER_NODE_W < report.max_budget_w


def test_redistribute_beats_uniform_makespan_at_equal_cap():
    _, uniform = _two_job_session("uniform")
    _, redis = _two_job_session("redistribute")
    assert max(r.duration_s for r in redis) < max(r.duration_s for r in uniform)


@pytest.mark.parametrize("policy", ["uniform", "redistribute"])
def test_per_job_attribution_sums_to_accountant_total(policy):
    session, results = _two_job_session(policy)
    attributed = sum(r.energy_j for r in results)
    assert attributed + session.residual_energy_j == \
        session.accountant.total_energy_j()
    # Both jobs burned energy, and the shared base draw outside the job
    # windows lands in the residual, not on either job (negative only by
    # float rounding of the subtraction).
    assert all(r.energy_j > 0 for r in results)
    assert session.residual_energy_j >= -1e-9


def test_run_jobs_single_job_matches_plain_run():
    """The multi-job path is the same simulation: one job launched via
    launch()/run_jobs() reproduces MpiJob.run() exactly."""
    plain_job = _single_job(cap_w=SPEC.nodes * CAP_PER_NODE_W)
    plain = plain_job.run(_compute_program)

    job = _single_job(cap_w=SPEC.nodes * CAP_PER_NODE_W)
    job.launch(_compute_program)
    (result,) = job.session.run_jobs([job])
    assert result.duration_s == plain.duration_s
    assert job.env.events_processed == plain_job.env.events_processed
    # A whole-cluster job owns every core and every node-second, so the
    # attributed energy is the accountant total and nothing is residual.
    assert result.energy_j == pytest.approx(plain.energy_j, rel=1e-12)
    assert job.session.residual_energy_j == pytest.approx(0.0, abs=1e-9)


def test_run_jobs_requires_launched_jobs():
    session = SimSession(cluster_spec=SPEC)
    job = MpiJob(CORES_PER_NODE, session=session)
    with pytest.raises(ValueError):
        session.run_jobs([job])


# -- ambient scope -----------------------------------------------------------
def test_ambient_scope_arbiters_jobs_and_collects_reports():
    config = ArbiterConfig(power_cap_w=SPEC.nodes * CAP_PER_NODE_W)
    assert ambient_arbiter_scope() is None
    with use_arbiter(config) as scope:
        assert ambient_arbiter_scope() is scope
        job = _single_job()
        assert job.session.arbiter is not None
        job.run(_compute_program)
    assert ambient_arbiter_scope() is None
    assert len(scope.reports) == 1
    assert scope.reports[0].freq_changes == SPEC.nodes


def test_use_arbiter_none_shadows_outer_scope():
    config = ArbiterConfig(power_cap_w=SPEC.nodes * CAP_PER_NODE_W)
    with use_arbiter(config):
        with use_arbiter(None):
            assert ambient_arbiter_scope() is None
            job = _single_job()
            assert job.session.arbiter is None
