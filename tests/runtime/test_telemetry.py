"""merge_reports derives its summed set from fields() — drift-proof."""

from dataclasses import fields

from repro.runtime.telemetry import (
    NON_SUMMABLE_FIELDS,
    GovernorReport,
    merge_reports,
)


def test_every_field_is_summed_or_explicitly_excluded():
    """The drift guard: adding a field to GovernorReport without either
    summable semantics or an exclusion entry must fail loudly here."""
    names = {f.name for f in fields(GovernorReport)}
    assert NON_SUMMABLE_FIELDS <= names, "exclusions must name real fields"

    a = GovernorReport(policy="countdown", theta_us=200.0)
    b = GovernorReport(policy="countdown", theta_us=200.0)
    for i, name in enumerate(sorted(names - NON_SUMMABLE_FIELDS)):
        setattr(a, name, i + 1)
        setattr(b, name, 10 * (i + 1))
    merged = merge_reports([a, b])
    for i, name in enumerate(sorted(names - NON_SUMMABLE_FIELDS)):
        assert getattr(merged, name) == 11 * (i + 1), (
            f"field {name!r} was not summed by merge_reports"
        )


def test_merge_keeps_first_config_and_marks_monitor():
    a = GovernorReport(policy="predictive", theta_us=150.0,
                       monitor={"detail": 1})
    b = GovernorReport(policy="predictive", theta_us=150.0,
                       monitor={"detail": 2})
    merged = merge_reports([a, b])
    assert merged.policy == "predictive"
    assert merged.theta_us == 150.0
    assert merged.monitor == {"runs_merged": 2}


def test_to_dict_covers_every_field():
    report = GovernorReport()
    assert set(report.to_dict()) == {f.name for f in fields(GovernorReport)}


def test_newly_drifted_counters_are_summed():
    # The three fields the hand-written sum had historically dropped.
    a = GovernorReport(prescales=1, penalty_s=0.5, estimated_saving_j=2.0)
    b = GovernorReport(prescales=2, penalty_s=0.25, estimated_saving_j=3.0)
    merged = merge_reports([a, b])
    assert merged.prescales == 3
    assert merged.penalty_s == 0.75
    assert merged.estimated_saving_j == 5.0
