"""Unit tests for the slack monitor (EWMA, histogram, call history)."""

import pytest

from repro.runtime.slack import (
    EwmaEstimator,
    Log2Histogram,
    SlackMonitor,
    size_bucket,
)


def test_ewma_first_sample_is_exact():
    e = EwmaEstimator(alpha=0.25)
    assert e.value is None
    assert e.update(4.0) == 4.0
    assert e.count == 1


def test_ewma_converges_toward_constant_input():
    e = EwmaEstimator(alpha=0.5)
    for _ in range(20):
        e.update(10.0)
    assert e.value == pytest.approx(10.0)


def test_ewma_weights_recent_samples():
    e = EwmaEstimator(alpha=0.5)
    e.update(0.0)
    e.update(8.0)
    assert e.value == pytest.approx(4.0)


def test_ewma_rejects_bad_alpha():
    with pytest.raises(ValueError):
        EwmaEstimator(alpha=0.0)
    with pytest.raises(ValueError):
        EwmaEstimator(alpha=1.5)


def test_histogram_buckets_powers_of_two_microseconds():
    h = Log2Histogram()
    h.record(0.5e-6)   # <1us
    h.record(1.0e-6)   # [1,2)us
    h.record(3.0e-6)   # [2,4)us
    h.record(300e-6)   # [256,512)us
    assert h.summary() == {"<1us": 1, "1us": 1, "2us": 1, "256us": 1}
    assert h.count == 4
    assert h.total_s == pytest.approx(304.5e-6)


def test_size_bucket_groups_near_sizes():
    assert size_bucket(64 << 10) == size_bucket((64 << 10) + 100)
    assert size_bucket(64 << 10) != size_bucket(256 << 10)


def test_monitor_call_history_warmup():
    m = SlackMonitor(warm_calls=2)
    assert m.predicted_call_seconds("alltoall", 1 << 20) is None
    m.record_call("alltoall", 1 << 20, 0.010)
    assert m.predicted_call_seconds("alltoall", 1 << 20) is None  # still cold
    m.record_call("alltoall", 1 << 20, 0.010)
    assert m.predicted_call_seconds("alltoall", 1 << 20) == pytest.approx(0.010)
    # Different size bucket stays cold.
    assert m.predicted_call_seconds("alltoall", 1 << 10) is None
    # Different op stays cold.
    assert m.predicted_call_seconds("bcast", 1 << 20) is None


def test_monitor_per_core_waits_merge_into_cluster_histogram():
    m = SlackMonitor()
    m.record_wait(0, 100e-6)
    m.record_wait(1, 100e-6)
    m.record_wait(1, 0.5e-6)
    assert m.waits_observed == 3
    assert m.total_wait_s == pytest.approx(200.5e-6)
    assert m.slack_histogram() == {"<1us": 1, "64us": 2}
    assert m.mean_wait_s(0) == pytest.approx(100e-6)
    assert m.mean_wait_s(7) is None


def test_monitor_summary_is_json_shaped():
    import json

    m = SlackMonitor()
    m.record_wait(0, 1e-3)
    m.record_call("bcast", 4096, 2e-3)
    summary = m.summary()
    json.dumps(summary)  # must be serialisable
    assert summary["waits_observed"] == 1
    assert summary["calls_observed"] == 1
    (key,) = summary["call_history"]
    assert key.startswith("bcast/2^")


def test_ewma_ignores_nan_and_clamps_negative():
    e = EwmaEstimator(alpha=0.5)
    e.update(4.0)
    assert e.update(float("nan")) == 4.0  # dropped, value unchanged
    assert e.count == 1
    e.update(-8.0)  # clamped to zero, not propagated
    assert e.value == pytest.approx(2.0)
    assert e.count == 2


def test_histogram_drops_nan_and_clamps_negative():
    h = Log2Histogram()
    h.record(float("nan"))
    assert h.count == 0
    h.record(-1.0)  # clamped into the sub-microsecond bin
    assert h.count == 1
    assert h.total_s == 0.0
    assert h.summary() == {"<1us": 1}
