"""Tests for the regression-baseline machinery."""

import json
import os

import pytest

from repro.bench import (
    RegressionError,
    check_against_baseline,
    refresh_baselines,
    save_json,
)
from repro.bench.regression import compare_rows


HEADERS = ["Size", "Latency (us)"]
ROWS = [["16K", 100.0], ["1M", 5000.0]]


def test_compare_rows_identical():
    assert compare_rows(ROWS, ROWS) == []


def test_compare_rows_within_tolerance():
    drifted = [["16K", 110.0], ["1M", 4500.0]]
    assert compare_rows(ROWS, drifted, rel_tol=0.25) == []


def test_compare_rows_beyond_tolerance():
    broken = [["16K", 100.0], ["1M", 9000.0]]
    problems = compare_rows(ROWS, broken, rel_tol=0.25)
    assert len(problems) == 1
    assert "row 1" in problems[0]


def test_compare_rows_label_change_detected():
    relabelled = [["32K", 100.0], ["1M", 5000.0]]
    assert compare_rows(ROWS, relabelled)


def test_compare_rows_shape_changes():
    assert compare_rows(ROWS, ROWS[:1])
    assert compare_rows(ROWS, [["16K"], ["1M", 5000.0]])


def test_check_against_baseline_roundtrip(tmp_path):
    save_json("exp", HEADERS, ROWS, results_dir=str(tmp_path))
    assert check_against_baseline("exp", HEADERS, ROWS, str(tmp_path))


def test_check_missing_baseline_is_noop(tmp_path):
    assert check_against_baseline("nope", HEADERS, ROWS, str(tmp_path)) is False


def test_check_header_change_raises(tmp_path):
    save_json("exp", HEADERS, ROWS, results_dir=str(tmp_path))
    with pytest.raises(RegressionError, match="headers changed"):
        check_against_baseline("exp", ["Other"], [[1]], str(tmp_path))


def test_check_divergence_raises(tmp_path):
    save_json("exp", HEADERS, ROWS, results_dir=str(tmp_path))
    broken = [["16K", 100.0], ["1M", 50000.0]]
    with pytest.raises(RegressionError, match="diverged"):
        check_against_baseline("exp", HEADERS, broken, str(tmp_path))


def test_refresh_baselines(tmp_path):
    results = tmp_path / "results"
    expected = tmp_path / "expected"
    save_json("a", HEADERS, ROWS, results_dir=str(results))
    save_json("b", HEADERS, ROWS, results_dir=str(results))
    written = refresh_baselines(str(results), str(expected))
    assert set(written) == {"a", "b"}
    assert os.path.exists(expected / "a.json")


def test_committed_baselines_exist_for_core_experiments():
    """The repository ships baselines pinning the headline reproductions."""
    expected_dir = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "benchmarks", "expected"
    )
    for name in (
        "fig07a_alltoall_latency",
        "fig07b_alltoall_power",
        "table1_cpmd_energy",
        "table2_nas_energy",
    ):
        path = os.path.join(expected_dir, f"{name}.json")
        assert os.path.exists(path), f"missing baseline {name}"
        with open(path) as fh:
            record = json.load(fh)
        assert record["rows"]
