"""Tests for the report formatting utilities."""

import os

import pytest

from repro.bench import bytes_label, format_table, render_experiment, save_report


def test_format_table_alignment():
    text = format_table(["A", "Bee"], [[1, 2.5], [333, 0.001]])
    lines = text.splitlines()
    assert len(lines) == 4
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equal width


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["A", "B"], [[1]])


def test_format_value_styles():
    text = format_table(["x"], [[1234.5], [12.345], [0.00123], [0]])
    assert "1,234.5" in text
    assert "12.35" in text
    assert "0.00123" in text


def test_render_experiment_includes_title_and_notes():
    text = render_experiment("My exp", ["h"], [[1]], notes="a note")
    assert text.startswith("== My exp ==")
    assert "a note" in text
    assert text.endswith("\n")


def test_save_report_writes_file(tmp_path):
    path = save_report("unit", "hello\n", results_dir=str(tmp_path))
    assert os.path.exists(path)
    with open(path) as fh:
        assert fh.read() == "hello\n"


def test_bytes_label():
    assert bytes_label(1 << 10) == "1K"
    assert bytes_label(16 << 10) == "16K"
    assert bytes_label(1 << 20) == "1M"
    assert bytes_label(4) == "4"
    assert bytes_label(1500) == "1500"
