"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.plot import ascii_chart, chart_from_rows


def test_basic_chart_renders():
    text = ascii_chart([1, 2, 3], [[1.0, 2.0, 3.0]], title="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "*" in text
    assert "3" in text  # max label
    assert "1" in text  # min label


def test_multiple_series_distinct_glyphs():
    text = ascii_chart([1, 2], [[1.0, 2.0], [2.0, 1.0]], labels=["a", "b"])
    assert "*" in text
    assert "o" in text
    assert "* a" in text
    assert "o b" in text


def test_monotone_series_plots_monotone():
    """Higher values land on higher rows."""
    text = ascii_chart([1, 2, 3, 4], [[1, 2, 3, 4]], width=8, height=4)
    rows = [ln.split("|")[1] for ln in text.splitlines() if "|" in ln]
    first_col = next(i for i, ch in enumerate(rows[-1]) if ch == "*")
    last_col = next(i for i, ch in enumerate(rows[0]) if ch == "*")
    assert first_col < last_col  # min at bottom-left, max at top-right


def test_log_axes():
    text = ascii_chart(
        [1024, 1 << 20], [[10.0, 1000.0]], logx=True, logy=True
    )
    assert "|" in text
    with pytest.raises(ValueError):
        ascii_chart([0, 1], [[1, 2]], logx=True)
    with pytest.raises(ValueError):
        ascii_chart([1, 2], [[0, 2]], logy=True)


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        ascii_chart([1, 2], [[1.0]])
    with pytest.raises(ValueError):
        ascii_chart([], [[]])


def test_flat_series_does_not_crash():
    text = ascii_chart([1, 2, 3], [[5.0, 5.0, 5.0]])
    assert "*" in text


def test_chart_from_rows_parses_size_labels():
    rows = [("16K", 10.0, 12.0), ("64K", 40.0, 45.0), ("1M", 600.0, 700.0)]
    text = chart_from_rows(
        rows, y_columns=[1, 2], labels=["a", "b"], logx=True, logy=True
    )
    assert "* a" in text
    assert "o b" in text


def test_chart_from_rows_numeric_x():
    rows = [(0.5, 2.3), (1.0, 2.3), (1.5, 1.8)]
    text = chart_from_rows(rows, y_columns=[1])
    assert "|" in text
