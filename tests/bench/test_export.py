"""Tests for the JSON experiment export."""

import json
import os

import pytest

from repro.bench import experiment_to_dict, load_json, save_json


HEADERS = ["Size", "Latency (us)"]
ROWS = [("16K", 10.5), ("1M", 600.0)]


def test_experiment_to_dict_schema():
    record = experiment_to_dict("exp", HEADERS, ROWS, notes="n")
    assert record["schema"] == 1
    assert record["experiment"] == "exp"
    assert record["headers"] == HEADERS
    assert record["rows"] == [["16K", 10.5], ["1M", 600.0]]
    assert record["records"][0] == {"Size": "16K", "Latency (us)": 10.5}
    assert record["notes"] == "n"


def test_experiment_to_dict_ragged_rejected():
    with pytest.raises(ValueError):
        experiment_to_dict("exp", HEADERS, [(1,)])


def test_save_and_load_roundtrip(tmp_path):
    path = save_json("exp", HEADERS, ROWS, results_dir=str(tmp_path))
    assert os.path.basename(path) == "exp.json"
    record = load_json(path)
    assert record["rows"] == [["16K", 10.5], ["1M", 600.0]]


def test_load_rejects_bad_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "experiment": "x"}))
    with pytest.raises(ValueError):
        load_json(str(path))


def test_load_rejects_missing_keys(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 1, "experiment": "x"}))
    with pytest.raises(ValueError):
        load_json(str(path))


def test_save_governor_json(tmp_path):
    from repro.bench import save_governor_json
    from repro.runtime.telemetry import GovernorReport

    reports = [
        GovernorReport(policy="countdown", theta_us=200.0, drops=5, restores=5),
        GovernorReport(policy="countdown", theta_us=200.0, drops=3, restores=3),
    ]
    path = save_governor_json(reports, results_dir=str(tmp_path))
    assert os.path.basename(path) == "governor.json"
    with open(path) as fh:
        record = json.load(fh)
    assert record["kind"] == "governor"
    assert record["merged"]["drops"] == 8
    assert [r["drops"] for r in record["runs"]] == [5, 3]


def test_cli_governor_flag_prints_summary():
    import io

    from repro.cli import main

    out = io.StringIO()
    code = main(
        ["osu", "alltoall", "--size", "64K", "--governor", "countdown"], out=out
    )
    assert code == 0
    assert "governor[countdown]:" in out.getvalue()


def test_cli_governor_theta_requires_governor():
    import io

    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["osu", "alltoall", "--governor-theta", "100"], out=io.StringIO())


def test_cli_experiment_json_flag(tmp_path):
    import io

    from repro.cli import main

    out = io.StringIO()
    code = main(["experiment", "models", "--json", str(tmp_path)], out=out)
    assert code == 0
    record = load_json(str(tmp_path / "models.json"))
    assert record["experiment"] == "models"
    assert record["rows"]
