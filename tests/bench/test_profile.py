"""SelfProfile scope hygiene: no observer leaks, nesting-safe."""

import pytest

from repro.bench.profile import ACTIVE_PROFILES, JobSample, SelfProfile
from repro.mpi.job import JOB_OBSERVERS, MpiJob
from repro.sim.session import SimSession


def _sample(**over):
    base = dict(n_ranks=4, sim_time_s=1.0, wall_time_s=0.5,
                events_processed=100, rerate_calls=2, flows_rerated=8)
    base.update(over)
    return JobSample(**base)


def _run_once():
    def program(ctx):
        yield from ctx.barrier()

    MpiJob(8, session=SimSession()).run(program)


def test_enter_exit_leaves_no_observer():
    before = JOB_OBSERVERS[:]
    with SelfProfile():
        assert len(JOB_OBSERVERS) == len(before) + 1
        assert ACTIVE_PROFILES
    assert JOB_OBSERVERS == before
    assert not ACTIVE_PROFILES


def test_exit_on_exception_still_deregisters():
    before = JOB_OBSERVERS[:]
    with pytest.raises(RuntimeError):
        with SelfProfile():
            raise RuntimeError("boom")
    assert JOB_OBSERVERS == before
    assert not ACTIVE_PROFILES


def test_nested_distinct_profiles_each_collect():
    with SelfProfile() as outer:
        with SelfProfile() as inner:
            _run_once()
        _run_once()
    # Inner saw one job; outer saw both.  Exiting the inner profile must
    # remove ITS observer, not the outer's.
    assert len(inner.samples) == 1
    assert len(outer.samples) == 2
    assert not JOB_OBSERVERS or all(
        o.__self__ not in (inner, outer) for o in JOB_OBSERVERS
        if hasattr(o, "__self__")
    )


def test_reentrant_same_instance_unwinds_cleanly():
    # Re-entering one instance builds equal-but-distinct bound methods;
    # equality-based removal could pop the wrong one and leak the other.
    prof = SelfProfile()
    before = len(JOB_OBSERVERS)
    with prof:
        with prof:
            assert len(JOB_OBSERVERS) == before + 2
            _run_once()
        assert len(JOB_OBSERVERS) == before + 1
    assert len(JOB_OBSERVERS) == before
    assert not ACTIVE_PROFILES
    # Doubly registered while the job ran: two samples of the same job.
    assert len(prof.samples) == 2


def test_add_sample_feeds_aggregates():
    prof = SelfProfile()
    prof.add_sample(_sample(wall_time_s=1.0, events_processed=10))
    prof.add_sample(_sample(wall_time_s=3.0, events_processed=30))
    assert prof.total_wall_s == pytest.approx(4.0)
    assert prof.total_events == 40
    assert "jobs run            : 2" in prof.report()


def test_report_without_samples():
    assert "no jobs" in SelfProfile().report()
