"""Fast smoke tests of the experiment functions with reduced parameters,
so `pytest tests/` exercises the bench code paths without the full sweeps."""

import pytest

from repro.bench import (
    ablation_throttle_granularity,
    ablation_transition_overheads,
    alltoallv_power,
    fig2a_alltoall_scaling,
    fig2b_bcast_phases,
    fig2c_reduce_phases,
    fig6a_polling_vs_blocking,
    fig7a_alltoall_latency,
    fig8a_bcast_latency,
    models_validation,
    run_collective_loop,
)

SMALL = (64 << 10,)


def _check(headers, rows, notes):
    assert headers
    assert rows
    for row in rows:
        assert len(row) == len(headers)
    assert isinstance(notes, str)


def test_fig2a_smoke():
    _check(*fig2a_alltoall_scaling(sizes=SMALL))


def test_fig2b_smoke():
    _check(*fig2b_bcast_phases(sizes=SMALL))


def test_fig2c_smoke():
    _check(*fig2c_reduce_phases(sizes=(1024,)))


def test_fig6a_smoke():
    _check(*fig6a_polling_vs_blocking(sizes=SMALL))


def test_fig7a_smoke():
    headers, rows, notes = fig7a_alltoall_latency(sizes=SMALL)
    _check(headers, rows, notes)
    # Scheme ordering holds even at one point.
    assert rows[0][1] < rows[0][2] < rows[0][3]


def test_fig8a_smoke():
    _check(*fig8a_bcast_latency(sizes=SMALL))


def test_alltoallv_smoke():
    _check(*alltoallv_power(sizes=SMALL))


def test_models_validation_smoke():
    _check(*models_validation(nbytes=64 << 10))


def test_granularity_smoke():
    _check(*ablation_throttle_granularity(nbytes=64 << 10))


def test_overheads_smoke():
    _check(*ablation_transition_overheads(nbytes=64 << 10, overheads_us=(0.0, 12.0)))


def test_run_collective_loop_iterations():
    one = run_collective_loop("bcast", 64 << 10, 16, iterations=1, keep_segments=False)
    three = run_collective_loop("bcast", 64 << 10, 16, iterations=3, keep_segments=False)
    assert three.duration_s == pytest.approx(3 * one.duration_s, rel=0.05)
