"""Tests for the analytical models (equations 1–8) and their agreement
with the simulator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import CollectiveConfig, CollectiveEngine, PowerMode
from repro.models import (
    ModelParams,
    dvfs_slowdown,
    energy_alltoall_power_aware,
    energy_bcast_power_aware,
    energy_default,
    energy_dvfs,
    savings_ordering_holds,
    t_alltoall_pairwise,
    t_alltoall_power_aware,
    t_bcast_power_aware,
    t_bcast_scatter_allgather,
)
from repro.mpi import run_collective_once


# ------------------------------------------------------------ ModelParams
def test_params_from_specs_defaults():
    p = ModelParams.from_specs()
    assert p.tw_inter == pytest.approx(1 / 3.0e9)
    assert p.tw_intra == pytest.approx(1 / 4.5e9)
    assert p.o_dvfs == pytest.approx(12e-6)


def test_params_validation():
    with pytest.raises(ValueError):
        ModelParams(cnet=0.5)
    with pytest.raises(ValueError):
        ModelParams(cthrottle=0.9)
    with pytest.raises(ValueError):
        ModelParams.contended(0)


# ------------------------------------------------ eq (1): pairwise alltoall
def test_eq1_linear_in_message_size():
    t1 = t_alltoall_pairwise(8, 8, 1 << 16)
    t2 = t_alltoall_pairwise(8, 8, 1 << 17)
    assert t2 == pytest.approx(2 * t1)


def test_eq1_linear_in_system_size():
    """§VII-F: pairwise cost ∝ P − c, nearly doubling from 32 to 64 procs."""
    t32 = t_alltoall_pairwise(4, 8, 1 << 20)
    t64 = t_alltoall_pairwise(8, 8, 1 << 20)
    assert t64 / t32 == pytest.approx((64 - 8) / (32 - 8))


def test_eq1_contention_multiplies():
    base = t_alltoall_pairwise(8, 8, 1 << 20)
    contended = t_alltoall_pairwise(8, 8, 1 << 20, ModelParams.contended(8))
    assert contended == pytest.approx(8 * base)


def test_eq1_validation():
    with pytest.raises(ValueError):
        t_alltoall_pairwise(0, 8, 100)
    with pytest.raises(ValueError):
        t_alltoall_pairwise(8, 8, -1)


# ------------------------------------------- eq (2): scatter-allgather bcast
def test_eq2_closed_form():
    p = ModelParams()
    m, n = 1 << 20, 8
    expected = m * (n - 1) * p.tw_inter * (1 + 1 / n)
    assert t_bcast_scatter_allgather(n, m, p) == pytest.approx(expected)


def test_eq2_single_node_is_free():
    assert t_bcast_scatter_allgather(1, 1 << 20) == 0.0


# ------------------------------------------------- eq (3): power alltoall
def test_eq3_overhead_linear_in_nodes():
    """§VI-A2: 'the performance overhead ... is linearly proportional to
    the number of nodes'."""
    p = ModelParams()
    t8 = t_alltoall_power_aware(8, 8, 0, p)
    t16 = t_alltoall_power_aware(16, 8, 0, p)
    assert t8 == pytest.approx(2 * p.o_dvfs + 8 * p.o_throttle)
    assert t16 - t8 == pytest.approx(8 * p.o_throttle)


def test_eq3_transfer_three_quarters_of_default():
    p = ModelParams.contended(8)
    m = 1 << 20
    t_def = t_alltoall_pairwise(8, 8, m, p)
    t_pow = t_alltoall_power_aware(8, 8, m, p)
    transfer_only = t_pow - 2 * p.o_dvfs - 8 * p.o_throttle
    # (3/4)·N·c vs (P−c): ratio = 0.75·64/56
    assert transfer_only / t_def == pytest.approx(0.75 * 64 / 56)


# --------------------------------------------------- eq (4): power bcast
def test_eq4_reduces_to_eq2_with_unit_cthrottle():
    p = ModelParams(cthrottle=1.0)
    m = 1 << 20
    expected = t_bcast_scatter_allgather(8, m, p) + 2 * p.o_dvfs + 2 * p.o_throttle
    assert t_bcast_power_aware(8, m, p) == pytest.approx(expected)


# -------------------------------------------------------- eqs (5)–(8)
def test_energy_ordering():
    assert savings_ordering_holds()


def test_eq5_matches_calibrated_system_power():
    # 1 second at full tilt ⇒ 2300 J for the paper testbed.
    assert energy_default(8, 8, 1.0) == pytest.approx(2300.0, rel=0.01)


def test_eq6_matches_dvfs_power():
    assert energy_dvfs(8, 8, 1.0) == pytest.approx(1800.0, rel=0.01)


def test_eq7_matches_proposed_alltoall_power():
    assert energy_alltoall_power_aware(8, 8, 1.0) == pytest.approx(1600.0, rel=0.02)


def test_eq8_below_eq7():
    e7 = energy_alltoall_power_aware(8, 8, 1.0)
    e8 = energy_bcast_power_aware(8, 8, 1.0)
    assert e8 < e7


@given(
    n=st.integers(min_value=1, max_value=64),
    c=st.integers(min_value=1, max_value=32),
    dur=st.floats(min_value=1e-6, max_value=100.0),
)
def test_energy_models_positive_and_ordered(n, c, dur):
    e5 = energy_default(n, c, dur)
    e6 = energy_dvfs(n, c, dur)
    e7 = energy_alltoall_power_aware(n, c, dur)
    assert e5 > e6 > e7 > 0


# ------------------------------------------------------- dvfs_slowdown
def test_dvfs_slowdown_bounds():
    assert dvfs_slowdown(2.4, 2.4, 0.72) == pytest.approx(1.0)
    assert dvfs_slowdown(1.6, 2.4, 0.72) > 1.0
    with pytest.raises(ValueError):
        dvfs_slowdown(0.0, 2.4, 0.72)


# ------------------------------------------- model vs simulator agreement
def test_eq1_tracks_simulator_scaling():
    """Model and simulator agree on the 32→64 rank scaling factor."""
    m = 1 << 18
    sim32 = run_collective_once("alltoall", m, 32).duration_s
    sim64 = run_collective_once("alltoall", m, 64).duration_s
    model_ratio = t_alltoall_pairwise(8, 8, m) / t_alltoall_pairwise(4, 8, m)
    assert sim64 / sim32 == pytest.approx(model_ratio, rel=0.15)


def test_eq2_tracks_simulator_bcast_network_phase():
    """Equation (2) as printed counts M(N−1)·tw for the allgather, i.e. it
    omits the 1/N block factor of a ring allgather whose steps overlap
    across leaders.  The simulator executes the real schedule, so the
    closed form over-predicts by ≈N/2; we assert exactly that relation."""
    m = 1 << 20
    n = 8
    r = run_collective_once("bcast", m, 64)
    net = r.job.stats.phase_times["bcast.network"]
    model = t_bcast_scatter_allgather(n, m)
    assert model / net == pytest.approx(n / 2, rel=0.25)


def test_eq7_tracks_simulator_proposed_alltoall_energy():
    m = 1 << 20
    eng = CollectiveEngine(CollectiveConfig(power_mode=PowerMode.PROPOSED))
    r = run_collective_once("alltoall", m, 64, collectives=eng)
    model_e = energy_alltoall_power_aware(8, 8, r.duration_s)
    assert r.energy_j == pytest.approx(model_e, rel=0.10)
