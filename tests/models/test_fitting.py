"""Tests for model-constant fitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.microbench import osu_latency, sweep
from repro.models import (
    ModelParams,
    fit_cnet,
    fit_cnet_from_simulation,
    fit_hockney,
)


def test_fit_hockney_recovers_exact_line():
    sizes = [1024, 4096, 65536, 1 << 20]
    times = [2e-6 + m / 3e9 for m in sizes]
    fit = fit_hockney(sizes, times)
    assert fit.ts == pytest.approx(2e-6, rel=1e-6)
    assert fit.tw == pytest.approx(1 / 3e9, rel=1e-6)
    assert fit.bandwidth == pytest.approx(3e9, rel=1e-6)
    assert fit.predict(2048) == pytest.approx(2e-6 + 2048 / 3e9)


def test_fit_hockney_validation():
    with pytest.raises(ValueError):
        fit_hockney([1], [1.0])
    with pytest.raises(ValueError):
        fit_hockney([1, 2], [1.0])


@given(
    ts=st.floats(min_value=1e-7, max_value=1e-4),
    bw=st.floats(min_value=1e8, max_value=1e10),
)
@settings(max_examples=50)
def test_fit_hockney_roundtrip_property(ts, bw):
    sizes = [1 << k for k in range(8, 22, 2)]
    times = [ts + m / bw for m in sizes]
    fit = fit_hockney(sizes, times)
    assert fit.ts == pytest.approx(ts, rel=1e-4)
    assert fit.bandwidth == pytest.approx(bw, rel=1e-4)


def test_fit_hockney_on_simulated_latency():
    """Fit the simulator's own p2p path; the recovered tw must match the
    model's wire bandwidth within the rendezvous overhead."""
    rows = sweep(osu_latency, sizes=(64 << 10, 256 << 10, 1 << 20), iterations=3)
    fit = fit_hockney([r[0] for r in rows], [r[1] for r in rows])
    assert 2.0e9 < fit.bandwidth < 3.5e9
    assert fit.ts >= 0


def test_fit_cnet_exact():
    params = ModelParams()
    sizes = [65536, 1 << 20]
    cnet_true = 6.5
    p, c = 64, 8
    times = [params.tw_inter * (p - c) * cnet_true * m for m in sizes]
    assert fit_cnet(8, 8, sizes, times, params) == pytest.approx(cnet_true)


def test_fit_cnet_validation():
    with pytest.raises(ValueError):
        fit_cnet(8, 8, [], [])
    with pytest.raises(ValueError):
        fit_cnet(8, 8, [1024], [-1.0])


def test_fit_cnet_from_simulation_near_ranks_per_hca():
    """The emergent contention factor ≈ ranks/HCA x congestion factor —
    the physical meaning the paper assigns to Cnet."""
    cnet = fit_cnet_from_simulation(64, sizes=(256 << 10, 1 << 20))
    # 8 ranks per HCA, x(1+0.05·7)=1.35 congestion, x9/8 pairwise step mix.
    assert 8.0 < cnet < 14.0
