"""Tests for the NUMA (cross-socket QPI) shared-memory model."""

import pytest

from repro.mpi import MpiJob
from repro.network import NetworkSpec

IDEAL_NET = NetworkSpec(flow_congestion=0.0)


def hop_time(src, dst):
    job = MpiJob(16, network_spec=IDEAL_NET)
    out = {}

    def program(ctx):
        if ctx.rank == src:
            yield from ctx.send(dst=dst, nbytes=4 << 20)
        elif ctx.rank == dst:
            yield from ctx.recv(src=src)
            out["t"] = ctx.env.now

    job.run(program)
    return out["t"]


def test_same_socket_faster_than_cross_socket():
    # Ranks 0,1 share socket A; rank 4 sits on socket B (bunch affinity).
    same = hop_time(0, 1)
    cross = hop_time(0, 4)
    assert cross > same


def test_cross_socket_ratio_matches_qpi_model():
    spec = NetworkSpec()
    same = hop_time(0, 1)
    cross = hop_time(0, 4)
    expected = spec.shm_bw / spec.shm_bw_cross_socket
    # Latency terms shrink the measured ratio slightly.
    assert cross / same == pytest.approx(expected, rel=0.05)


def test_cross_socket_still_faster_than_network():
    cross_socket = hop_time(0, 4)
    cross_node = hop_time(0, 8)
    assert cross_socket < cross_node
