"""Tests for MPI_Comm_split and request-wait helpers."""

import pytest

from repro.mpi import MpiJob
from repro.network import NetworkSpec

IDEAL_NET = NetworkSpec(flow_congestion=0.0)


def test_split_by_parity():
    job = MpiJob(16, network_spec=IDEAL_NET)
    results = {}

    def program(ctx):
        new_comm = yield from ctx.comm_split(color=ctx.rank % 2)
        results[ctx.rank] = (new_comm.size, new_comm.rank_of(ctx.rank))

    job.run(program)
    for rank, (size, local) in results.items():
        assert size == 8
        assert local == rank // 2


def test_split_key_reorders():
    job = MpiJob(16, network_spec=IDEAL_NET)
    results = {}

    def program(ctx):
        # Reverse ordering within one group.
        new_comm = yield from ctx.comm_split(color=0, key=-ctx.rank)
        results[ctx.rank] = new_comm.rank_of(ctx.rank)

    job.run(program)
    # Rank 15 gets local rank 0, rank 0 gets local rank 15.
    assert results[15] == 0
    assert results[0] == 15


def test_split_undefined_color_returns_none():
    job = MpiJob(16, network_spec=IDEAL_NET)
    results = {}

    def program(ctx):
        color = None if ctx.rank < 4 else 1
        new_comm = yield from ctx.comm_split(color=color)
        results[ctx.rank] = new_comm

    job.run(program)
    assert all(results[r] is None for r in range(4))
    assert all(results[r] is not None and results[r].size == 12 for r in range(4, 16))


def test_split_communicator_is_usable_for_collectives():
    job = MpiJob(16, network_spec=IDEAL_NET)
    done = {}

    def program(ctx):
        new_comm = yield from ctx.comm_split(color=ctx.node_id)
        yield from ctx.bcast(8 << 10, root=0, comm=new_comm)
        done[ctx.rank] = True

    job.run(program)
    assert len(done) == 16
    assert job.engine.quiescent()


def test_repeated_splits_get_distinct_comms():
    job = MpiJob(16, network_spec=IDEAL_NET)
    ids = {}

    def program(ctx):
        a = yield from ctx.comm_split(color=0)
        b = yield from ctx.comm_split(color=0)
        ids[ctx.rank] = (a.comm_id, b.comm_id)

    job.run(program)
    for a, b in ids.values():
        assert a != b
    # All ranks agree on the communicator identities.
    assert len({pair for pair in ids.values()}) == 1


def test_split_synchronises_ranks():
    """comm_split cannot complete before the slowest member arrives."""
    job = MpiJob(16, network_spec=IDEAL_NET)
    times = {}

    def program(ctx):
        if ctx.rank == 7:
            yield from ctx.compute(1e-3)
        yield from ctx.comm_split(color=0)
        times[ctx.rank] = ctx.env.now

    job.run(program)
    assert min(times.values()) >= 1e-3


# ------------------------------------------------------------ wait helpers
def test_waitall_returns_values():
    job = MpiJob(16, network_spec=IDEAL_NET)
    got = {}

    def program(ctx):
        if ctx.rank == 0:
            reqs = []
            for src in (1, 2, 3):
                req = yield from ctx.irecv(src=src, tag=src)
                reqs.append(req)
            got["values"] = yield from ctx.waitall(reqs)
        elif ctx.rank in (1, 2, 3):
            yield from ctx.compute(ctx.rank * 1e-4)
            yield from ctx.send(dst=0, nbytes=ctx.rank * 100, tag=ctx.rank)

    job.run(program)
    assert [v[2] for v in got["values"]] == [100, 200, 300]


def test_waitany_returns_first():
    job = MpiJob(16, network_spec=IDEAL_NET)
    got = {}

    def program(ctx):
        if ctx.rank == 0:
            fast = yield from ctx.irecv(src=1, tag=1)
            slow = yield from ctx.irecv(src=2, tag=2)
            idx, value = yield from ctx.waitany([slow, fast])
            got["idx"] = idx
            yield from ctx._wait(slow)
        elif ctx.rank == 1:
            yield from ctx.send(dst=0, nbytes=64, tag=1)
        elif ctx.rank == 2:
            yield from ctx.compute(1e-3)
            yield from ctx.send(dst=0, nbytes=64, tag=2)

    job.run(program)
    assert got["idx"] == 1  # `fast` finished first


def test_waitany_empty_rejected():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.waitany([])

    with pytest.raises(ValueError):
        job.run(program)
