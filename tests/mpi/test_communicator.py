"""Tests for communicators and the multi-core-aware layout."""

import pytest

from repro.cluster import AffinityMap, Cluster, ClusterSpec
from repro.mpi.communicator import CommLayout, Communicator, CommunicatorFactory


def test_communicator_rank_translation():
    comm = Communicator(0, [4, 8, 15], name="test")
    assert comm.size == 3
    assert comm.rank_of(8) == 1
    assert comm.world_rank(2) == 15
    assert comm.contains(4)
    assert not comm.contains(5)


def test_communicator_validation():
    with pytest.raises(ValueError):
        Communicator(0, [1, 1, 2])
    with pytest.raises(ValueError):
        Communicator(0, [])
    comm = Communicator(0, [0, 1])
    with pytest.raises(ValueError):
        comm.rank_of(9)
    with pytest.raises(ValueError):
        comm.world_rank(2)
    with pytest.raises(ValueError):
        comm.world_rank(-1)


def test_factory_assigns_unique_ids():
    factory = CommunicatorFactory()
    a = factory.create([0, 1])
    b = factory.create([0, 1])
    assert a.comm_id != b.comm_id


def test_layout_matches_paper_fig1():
    cluster = Cluster(ClusterSpec.paper_testbed())
    affinity = AffinityMap(cluster, 64)
    layout = CommLayout.build(CommunicatorFactory(), affinity)
    assert layout.world.size == 64
    assert len(layout.shared) == 8
    for node_id, comm in layout.shared.items():
        assert comm.size == 8
        assert comm.group == tuple(range(node_id * 8, node_id * 8 + 8))
    assert layout.leaders.size == 8
    assert layout.leaders.group == (0, 8, 16, 24, 32, 40, 48, 56)


def test_layout_partial_cluster():
    cluster = Cluster(ClusterSpec.paper_testbed())
    affinity = AffinityMap(cluster, 32)
    layout = CommLayout.build(CommunicatorFactory(), affinity)
    assert layout.world.size == 32
    assert len(layout.shared) == 4
    assert layout.leaders.group == (0, 8, 16, 24)


def test_comm_ids_disjoint_across_layout():
    cluster = Cluster(ClusterSpec.paper_testbed())
    affinity = AffinityMap(cluster, 64)
    layout = CommLayout.build(CommunicatorFactory(), affinity)
    ids = [layout.world.comm_id, layout.leaders.comm_id]
    ids += [c.comm_id for c in layout.shared.values()]
    assert len(set(ids)) == len(ids)
