"""Tests for point-to-point messaging: matching, protocols, timing."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiJob, ProgressMode
from repro.network import NetworkSpec

IDEAL_NET = NetworkSpec(flow_congestion=0.0)


def make_job(n=16, **kw):
    kw.setdefault("network_spec", IDEAL_NET)
    return MpiJob(n, **kw)


def test_simple_send_recv():
    job = make_job()
    log = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=1024, tag=7)
        elif ctx.rank == 1:
            src, tag, nbytes = yield from ctx.recv(src=0, tag=7)
            log["recv"] = (src, tag, nbytes, ctx.env.now)

    job.run(program)
    src, tag, nbytes, t = log["recv"]
    assert (src, tag, nbytes) == (0, 7, 1024)
    assert t > 0


def test_eager_sender_returns_immediately():
    """A small send completes for the sender before the receiver posts."""
    job = make_job()
    times = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=256)
            times["send_done"] = ctx.env.now
        elif ctx.rank == 1:
            yield from ctx.compute(1e-3)  # busy; recv posted late
            yield from ctx.recv(src=0)
            times["recv_done"] = ctx.env.now

    job.run(program)
    assert times["send_done"] < 1e-4
    assert times["recv_done"] >= 1e-3


def test_rendezvous_sender_blocks_for_receiver():
    """A large send cannot complete until the receiver arrives."""
    job = make_job()
    times = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=8, nbytes=1 << 20)  # inter-node, rndv
            times["send_done"] = ctx.env.now
        elif ctx.rank == 8:
            yield from ctx.compute(5e-3)
            yield from ctx.recv(src=0)
            times["recv_done"] = ctx.env.now

    job.run(program)
    assert times["send_done"] >= 5e-3
    assert times["send_done"] == pytest.approx(times["recv_done"], abs=1e-6)


def test_intra_node_faster_than_inter_node():
    def one_hop(dst):
        job = make_job()
        times = {}

        def program(ctx, dst=dst):
            if ctx.rank == 0:
                yield from ctx.send(dst=dst, nbytes=1 << 20)
            elif ctx.rank == dst:
                yield from ctx.recv(src=0)
                times["t"] = ctx.env.now

        job.run(program)
        return times["t"]

    assert one_hop(1) < one_hop(8)  # same node beats cross-node


def test_message_ordering_fifo_same_tag():
    job = make_job()
    order = []

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=64, tag=5)
            yield from ctx.send(dst=1, nbytes=128, tag=5)
        elif ctx.rank == 1:
            _, _, n1 = yield from ctx.recv(src=0, tag=5)
            _, _, n2 = yield from ctx.recv(src=0, tag=5)
            order.extend([n1, n2])

    job.run(program)
    assert order == [64, 128]


def test_tag_selective_matching():
    job = make_job()
    got = []

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=100, tag=1)
            yield from ctx.send(dst=1, nbytes=200, tag=2)
        elif ctx.rank == 1:
            _, _, n = yield from ctx.recv(src=0, tag=2)
            got.append(n)
            _, _, n = yield from ctx.recv(src=0, tag=1)
            got.append(n)

    job.run(program)
    assert got == [200, 100]


def test_any_source_any_tag():
    job = make_job()
    got = []

    def program(ctx):
        if ctx.rank in (2, 3):
            yield from ctx.send(dst=0, nbytes=32 * ctx.rank, tag=ctx.rank)
        elif ctx.rank == 0:
            for _ in range(2):
                src, tag, n = yield from ctx.recv(src=ANY_SOURCE, tag=ANY_TAG)
                got.append((src, tag, n))

    job.run(program)
    assert sorted(got) == [(2, 2, 64), (3, 3, 96)]


def test_sendrecv_exchanges_symmetrically():
    job = make_job()
    results = {}

    def program(ctx):
        if ctx.rank in (0, 1):
            partner = 1 - ctx.rank
            src, tag, n = yield from ctx.sendrecv(dst=partner, nbytes=4096)
            results[ctx.rank] = (src, n)

    job.run(program)
    assert results[0] == (1, 4096)
    assert results[1] == (0, 4096)


def test_zero_byte_message():
    job = make_job()
    got = []

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=0)
        elif ctx.rank == 1:
            _, _, n = yield from ctx.recv(src=0)
            got.append(n)

    job.run(program)
    assert got == [0]


def test_unmatched_recv_detected_as_error():
    job = make_job()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.recv(src=1)  # never satisfied

    with pytest.raises(Exception):
        job.run(program)


def test_negative_nbytes_rejected():
    job = make_job()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=-5)
        elif ctx.rank == 1:
            yield from ctx.recv(src=0)

    with pytest.raises(ValueError):
        job.run(program)


def test_negative_send_tag_rejected():
    job = make_job()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=8, tag=-1)
        elif ctx.rank == 1:
            yield from ctx.recv(src=0)

    with pytest.raises(ValueError):
        job.run(program)


def test_blocking_mode_slower_but_core_sleeps():
    def run(progress):
        job = MpiJob(16, progress=progress, network_spec=IDEAL_NET)
        times = {}

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(1e-3)
                yield from ctx.send(dst=8, nbytes=1 << 20)
            elif ctx.rank == 8:
                yield from ctx.recv(src=0)
                times["t"] = ctx.env.now

        result = job.run(program)
        return times["t"], result

    t_poll, r_poll = run(ProgressMode.POLLING)
    t_block, r_block = run(ProgressMode.BLOCKING)
    assert t_block > t_poll
    # The receiver slept while waiting: less energy on its core.
    core8 = r_block.job.affinity.core_of(8).core_id
    assert r_block.accountant.core_energy_j(core8) < r_poll.accountant.core_energy_j(
        core8
    )


def test_blocking_intra_node_uses_loopback():
    """Intra-node blocking messages pay network-style latency (§II-B)."""

    def one_hop(progress):
        job = MpiJob(16, progress=progress, network_spec=IDEAL_NET)
        times = {}

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.send(dst=1, nbytes=1 << 20)
            elif ctx.rank == 1:
                yield from ctx.recv(src=0)
                times["t"] = ctx.env.now

        job.run(program)
        return times["t"]

    assert one_hop(ProgressMode.BLOCKING) > one_hop(ProgressMode.POLLING)


def test_many_pairs_deterministic():
    def run_once():
        job = make_job(32)
        ends = {}

        def program(ctx):
            partner = ctx.rank ^ 1
            for i in range(3):
                yield from ctx.sendrecv(dst=partner, nbytes=1 << 16, tag=i)
            ends[ctx.rank] = ctx.env.now

        job.run(program)
        return ends

    assert run_once() == run_once()


def test_isend_overlaps_communication_and_compute():
    job = make_job()
    times = {}

    def program(ctx):
        if ctx.rank == 0:
            req = yield from ctx.isend(dst=8, nbytes=1 << 20)
            yield from ctx.compute(2e-3)
            yield from ctx._wait(req)
            times["overlap"] = ctx.env.now
        elif ctx.rank == 8:
            yield from ctx.recv(src=0)

    job.run(program)
    # Transfer (≈350 µs) hides inside the 2 ms compute.
    assert times["overlap"] == pytest.approx(2e-3, rel=0.05)


def test_quiescence_check_passes_on_clean_job():
    job = make_job()

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(dst=1, nbytes=64)
        elif ctx.rank == 1:
            yield from ctx.recv(src=0)

    job.run(program)
    assert job.engine.quiescent()
