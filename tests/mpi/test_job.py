"""Tests for the job runner and rank context."""

import pytest

from repro.cluster import Activity, AffinityPolicy, ClusterSpec, ThrottleGranularity
from repro.mpi import MpiJob
from repro.network import NetworkSpec

IDEAL_NET = NetworkSpec(flow_congestion=0.0)


def test_run_returns_results_per_rank():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        yield from ctx.compute(1e-4)
        return ctx.rank * 2

    result = job.run(program)
    assert result.returns == [r * 2 for r in range(16)]
    assert result.duration_s == pytest.approx(1e-4)
    assert len(result.rank_finish_times) == 16


def test_job_runs_once_only():
    job = MpiJob(16)

    def program(ctx):
        yield from ctx.compute(1e-6)

    job.run(program)
    with pytest.raises(RuntimeError):
        job.run(program)


def test_compute_scales_with_frequency():
    job = MpiJob(16, network_spec=IDEAL_NET)
    times = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(1.2e-3)
            times["fmax"] = ctx.env.now
            yield from ctx.scale_frequency(1.6)
            t0 = ctx.env.now
            yield from ctx.compute(1.2e-3)
            times["fmin"] = ctx.env.now - t0

    job.run(program)
    assert times["fmax"] == pytest.approx(1.2e-3)
    assert times["fmin"] == pytest.approx(1.2e-3 * 2.4 / 1.6)


def test_compute_scales_with_throttle():
    job = MpiJob(16, network_spec=IDEAL_NET)
    times = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.throttle(7)
            t0 = ctx.env.now
            yield from ctx.compute(1e-4)
            times["t7"] = ctx.env.now - t0

    job.run(program)
    assert times["t7"] == pytest.approx(1e-4 / 0.12)


def test_scale_frequency_charges_odvfs():
    job = MpiJob(16, network_spec=IDEAL_NET)
    times = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.scale_frequency(1.6)
            times["t"] = ctx.env.now

    result = job.run(program)
    assert times["t"] == pytest.approx(12e-6)
    assert result.stats.dvfs_transitions == 1


def test_throttle_socket_granularity_affects_peers():
    job = MpiJob(16, network_spec=IDEAL_NET)
    states = {}

    def program(ctx):
        if ctx.rank == 0:  # socket leader of socket A on node 0
            yield from ctx.throttle(7)
        yield from ctx.compute(1e-4)
        if ctx.rank == 2:  # same socket as rank 0
            states["peer_tstate"] = ctx.core.tstate
        if ctx.rank == 4:  # socket B
            states["other_socket"] = ctx.core.tstate

    job.run(program)
    assert states["peer_tstate"] == 7
    assert states["other_socket"] == 0


def test_throttle_core_granularity_isolated():
    spec = ClusterSpec.with_shape(nodes=2, granularity=ThrottleGranularity.CORE)
    job = MpiJob(16, cluster_spec=spec, network_spec=IDEAL_NET)
    states = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.throttle(7)
        yield from ctx.compute(1e-4)
        if ctx.rank == 2:
            states["peer_tstate"] = ctx.core.tstate

    job.run(program)
    assert states["peer_tstate"] == 0


def test_throttle_noop_costs_nothing():
    job = MpiJob(16, network_spec=IDEAL_NET)
    times = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.throttle(0)  # already T0
            times["t"] = ctx.env.now

    result = job.run(program)
    assert times["t"] == 0.0
    assert result.stats.throttle_transitions == 0


def test_node_flags_coordinate_ranks():
    job = MpiJob(16, network_spec=IDEAL_NET)
    times = {}

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(1e-3)
            ctx.notify("go")
        elif ctx.rank == 1:
            yield ctx.flag("go")
            times["woke"] = ctx.env.now

    job.run(program)
    assert times["woke"] == pytest.approx(1e-3)


def test_node_flags_are_node_local():
    job = MpiJob(16, network_spec=IDEAL_NET)
    fired = {}

    def program(ctx):
        if ctx.rank == 0:  # node 0
            ctx.notify("go")
            yield from ctx.compute(1e-6)
        elif ctx.rank == 8:  # node 1: flag with same name, different node
            fired["node1"] = ctx.flag("go").triggered
            yield from ctx.compute(1e-6)

    job.run(program)
    assert fired["node1"] is False


def test_arrive_counting_flag():
    job = MpiJob(16, network_spec=IDEAL_NET)
    times = {}

    def program(ctx):
        if ctx.rank in (0, 1, 2):
            yield from ctx.compute(1e-4 * (ctx.rank + 1))
            ctx.arrive("trio", expected=3)
        elif ctx.rank == 3:
            yield ctx.flag("trio")
            times["t"] = ctx.env.now

    job.run(program)
    assert times["t"] == pytest.approx(3e-4)  # waits for the slowest


def test_energy_accounting_integrated_with_run():
    job = MpiJob(64)

    def program(ctx):
        yield from ctx.compute(1e-3)

    result = job.run(program)
    # All 64 cores computing at fmax ⇒ ≈2.3 kW for 1 ms.
    assert result.average_power_w == pytest.approx(2300.0, rel=0.01)
    assert result.energy_j == pytest.approx(2.3, rel=0.01)


def test_activity_restored_after_run():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        yield from ctx.compute(1e-4)

    job.run(program)
    for rank in range(16):
        assert job.affinity.core_of(rank).activity is Activity.IDLE


def test_affinity_policy_respected():
    job = MpiJob(16, affinity=AffinityPolicy.SCATTER, network_spec=IDEAL_NET)
    assert job.affinity.socket_group(0) == 0
    assert job.affinity.socket_group(1) == 1


def test_idle_context_op():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.idle(1e-3)

    result = job.run(program)
    assert result.duration_s == pytest.approx(1e-3)


def test_compute_negative_rejected():
    job = MpiJob(16, network_spec=IDEAL_NET)

    def program(ctx):
        yield from ctx.compute(-1.0)

    with pytest.raises(ValueError):
        job.run(program)


def test_power_trace_from_result():
    job = MpiJob(64)

    def program(ctx):
        yield from ctx.compute(1.0)

    result = job.run(program)
    trace = result.power_trace()
    assert len(trace) == 2
    assert trace.power_w[0] == pytest.approx(2300.0, rel=0.01)
