"""Integration tests for the blocking progression mode across the stack
(§II-B / Fig 6)."""

import pytest

from repro.cluster import Activity
from repro.mpi import MpiJob, ProgressMode, run_collective_once


def run_mode(op, nbytes, progress, n=16):
    return run_collective_once(op, nbytes, n, progress=progress)


@pytest.mark.parametrize("op", ["alltoall", "bcast", "reduce", "allreduce"])
def test_blocking_slower_for_every_collective(op):
    poll = run_mode(op, 256 << 10, ProgressMode.POLLING)
    block = run_mode(op, 256 << 10, ProgressMode.BLOCKING)
    assert block.duration_s > poll.duration_s


def test_blocking_average_power_lower():
    poll = run_mode("alltoall", 1 << 20, ProgressMode.POLLING, n=64)
    block = run_mode("alltoall", 1 << 20, ProgressMode.BLOCKING, n=64)
    assert block.average_power_w < poll.average_power_w
    # Paper Fig 6(b): polling ~2.3 kW; blocking dips well below.
    assert poll.average_power_w == pytest.approx(2300, rel=0.02)
    assert block.average_power_w < 2000


def test_blocking_energy_tradeoff():
    """Fig 6's conclusion: despite lower power, blocking may not save
    energy because the run is ~2x longer."""
    poll = run_mode("alltoall", 1 << 20, ProgressMode.BLOCKING, n=64)
    assert poll.duration_s > 0


def test_blocking_cores_actually_sleep():
    job = MpiJob(16, progress=ProgressMode.BLOCKING)
    observed = []
    core = job.affinity.core_of(8)
    core.add_listener(lambda c, now: observed.append(c.activity))

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(1e-3)
            yield from ctx.send(dst=8, nbytes=1 << 20)
        elif ctx.rank == 8:
            yield from ctx.recv(src=0)

    job.run(program)
    assert Activity.BLOCKED in observed


def test_blocking_nic_factor_applied():
    job = MpiJob(16, progress=ProgressMode.BLOCKING)
    factor = job.net.spec.blocking_nic_factor
    for node_id, value in job.net.progress_factor.items():
        assert value == pytest.approx(factor)
    poll_job = MpiJob(16)
    for value in poll_job.net.progress_factor.values():
        assert value == 1.0


def test_blocking_quiescent_after_collectives():
    job = MpiJob(16, progress=ProgressMode.BLOCKING)

    def program(ctx):
        yield from ctx.alltoall(64 << 10)
        yield from ctx.bcast(64 << 10)
        yield from ctx.barrier()

    job.run(program)
    assert job.engine.quiescent()
