#!/usr/bin/env python
"""Quickstart: run one power-aware MPI_Alltoall on the paper's testbed.

Builds the 8-node / 64-core InfiniBand QDR cluster, runs a 1 MB
MPI_Alltoall under each of the paper's three schemes, and prints latency,
average power and energy — the Fig 7 comparison in five lines of API.

Run:  python examples/quickstart.py
"""

from repro import (
    CollectiveConfig,
    CollectiveEngine,
    MpiJob,
    PowerMode,
    SimSession,
)


def program(ctx):
    """The rank program: every rank takes part in one 1 MB alltoall."""
    yield from ctx.alltoall(1 << 20)


def main() -> None:
    print(f"{'scheme':14s} {'latency':>12s} {'avg power':>11s} {'energy':>9s}")
    for mode in PowerMode:
        session = SimSession()  # one substrate per run: env+cluster+fabric+power
        engine = CollectiveEngine(CollectiveConfig(power_mode=mode))
        job = MpiJob(n_ranks=64, session=session, collectives=engine)
        result = job.run(program)
        print(
            f"{mode.value:14s} {result.duration_s * 1e3:9.2f} ms "
            f"{result.average_power_w / 1e3:8.2f} kW "
            f"{result.energy_j:7.1f} J"
        )
    print(
        "\nExpected shape (paper Fig 7): the power-aware schemes cost ~10% "
        "latency\nwhile cutting power from ~2.3 kW to ~1.8 kW (DVFS) and "
        "~1.6 kW (proposed)."
    )


if __name__ == "__main__":
    main()
