#!/usr/bin/env python
"""Sweep NAS FT problem classes with the first-principles workload
generator — beyond the paper's single class C evaluation.

Smaller classes are more communication-bound (the grid shrinks faster
than the transpose's per-message overheads), so the power-aware scheme's
energy saving *grows* as the class shrinks — until the collectives become
too small to amortise the transitions.

Run:  python examples/nas_class_sweep.py
"""

from repro.apps import ft_shape, run_app, synthesize_ft
from repro.collectives import PowerMode

CLASSES = ("A", "B", "C")
RANKS = 64


def main() -> None:
    print(f"NAS FT at {RANKS} ranks, synthesised from class definitions\n")
    print(
        f"{'class':>5s} {'grid bytes':>12s} {'total':>8s} {'a2a frac':>9s} "
        f"{'E default':>10s} {'E proposed':>11s} {'saving':>7s}"
    )
    for klass in CLASSES:
        shape = ft_shape(klass, RANKS)
        app = synthesize_ft(klass, RANKS, sim_iterations=2)
        base = run_app(app, RANKS)
        prop = run_app(app, RANKS, PowerMode.PROPOSED)
        saving = 1.0 - prop.energy_kj / base.energy_kj
        print(
            f"{klass:>5s} {shape.total_bytes:12,d} {base.total_time_s:7.2f}s "
            f"{base.alltoall_fraction:9.1%} {base.energy_kj:9.2f}kJ "
            f"{prop.energy_kj:10.2f}kJ {saving:7.1%}"
        )


if __name__ == "__main__":
    main()
