#!/usr/bin/env python
"""Rack-aware power-aware broadcast (the paper's §VIII future work).

Builds a 4-rack, 16-node, 128-core cluster with 2:1 oversubscribed
leaf-to-spine uplinks and compares the three power schemes on a rack-aware
broadcast, where entire racks are throttled while only the four rack
leaders cross the spine.

Run:  python examples/rack_topology.py
"""

from repro import ClusterSpec, CollectiveConfig, CollectiveEngine, MpiJob, PowerMode

RACKED = ClusterSpec(nodes=16, racks=4)


def main() -> None:
    print("cluster: 4 racks x 4 nodes x 8 cores = 128 ranks, "
          "uplinks 2:1 oversubscribed\n")
    print(f"{'scheme':14s} {'latency':>12s} {'avg power':>11s} {'spine flows':>12s}")
    for mode in PowerMode:
        engine = CollectiveEngine(CollectiveConfig(power_mode=mode))
        job = MpiJob(128, cluster_spec=RACKED, collectives=engine)

        def program(ctx):
            for _ in range(4):
                yield from ctx.bcast(1 << 20)

        result = job.run(program)
        spine_flows = sum(
            n for name, n in job.net.fabric.link_flows.items()
            if name.startswith("rack_up")
        )
        print(
            f"{mode.value:14s} {result.duration_s / 4 * 1e6:9.1f} us "
            f"{result.average_power_w / 1e3:8.2f} kW {spine_flows:12d}"
        )
    print(
        "\nUnder 'proposed', whole racks sit at T7 during the inter-rack\n"
        "phase — the paper's vision of 'throttling down all the processes\n"
        "in a rack during the inter-rack communication phases' (§VIII)."
    )


if __name__ == "__main__":
    main()
