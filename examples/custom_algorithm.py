#!/usr/bin/env python
"""Writing a custom collective algorithm against the public API.

Implements a naive "linear gather-broadcast" alltoall (everything through
rank 0), races it against the library's pairwise exchange, and then shows
how to wrap *any* algorithm with the paper's per-call DVFS scheme — the
exact workflow for researchers extending the paper.

Run:  python examples/custom_algorithm.py
"""

from repro import MpiJob
from repro.collectives import tag_for, with_dvfs


def linear_alltoall(ctx, nbytes, comm, seq):
    """Strawman: rank 0 gathers everything, then redistributes.

    A deliberately bad algorithm — the point is that it is ~15 lines of
    the same generator API the built-in algorithms use.
    """
    me = comm.rank_of(ctx.rank)
    size = comm.size
    if me == 0:
        for src in range(1, size):
            yield from ctx.recv(src=src, tag=tag_for(seq, 0), comm=comm)
        for dst in range(1, size):
            yield from ctx.send(dst=dst, nbytes=nbytes * size, tag=tag_for(seq, 1), comm=comm)
    else:
        yield from ctx.send(dst=0, nbytes=nbytes * size, tag=tag_for(seq, 0), comm=comm)
        yield from ctx.recv(src=0, tag=tag_for(seq, 1), comm=comm)


def run(label, make_program):
    job = MpiJob(32)
    result = job.run(make_program)
    print(
        f"{label:32s} {result.duration_s * 1e6:10.1f} us  "
        f"{result.average_power_w / 1e3:5.2f} kW"
    )
    return result


def main() -> None:
    nbytes = 64 << 10

    def builtin(ctx):
        yield from ctx.alltoall(nbytes)

    def custom(ctx):
        yield from linear_alltoall(ctx, nbytes, ctx.world, seq=0)

    def custom_with_dvfs(ctx):
        yield from with_dvfs(ctx, linear_alltoall(ctx, nbytes, ctx.world, seq=0))

    print(f"{'algorithm':32s} {'latency':>13s} {'power':>7s}")
    builtin_result = run("library pairwise alltoall", builtin)
    custom_result = run("custom linear alltoall", custom)
    run("custom + per-call DVFS", custom_with_dvfs)

    slow = custom_result.duration_s / builtin_result.duration_s
    print(f"\nThe linear algorithm funnels everything through rank 0's HCA: "
          f"{slow:.1f}x slower.")


if __name__ == "__main__":
    main()
