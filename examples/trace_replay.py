#!/usr/bin/env python
"""Evaluate the power-aware collectives on *your* application profile.

Takes a profiled iteration structure (compute bursts + collective calls,
e.g. from mpiP/IPM output), replays it through the simulator, and reports
what each power scheme would do to runtime and energy — the
"would this help my code?" workflow.

Run:  python examples/trace_replay.py
"""

from repro.apps import CollectiveCall, ComputeEvent, app_from_trace, run_app
from repro.collectives import PowerMode

# One iteration of a made-up spectral solver profiled at 64 ranks:
# two FFT transposes, a halo-ish allgather, a residual allreduce, and
# ~410 ms of computation between them.
TRACE = [
    ComputeEvent(0.180),
    CollectiveCall("alltoall", 384 << 10),
    ComputeEvent(0.140),
    CollectiveCall("alltoall", 384 << 10),
    ComputeEvent(0.090),
    CollectiveCall("allgather", 32 << 10),
    CollectiveCall("allreduce", 4096),
]


def main() -> None:
    app = app_from_trace(
        "my-spectral-solver", n_ranks=64, events=TRACE, iterations=40,
        sim_iterations=4,
    )
    print(f"{'scheme':14s} {'total':>9s} {'alltoall':>9s} {'energy':>10s} {'saving':>8s}")
    base_energy = None
    for mode in PowerMode:
        r = run_app(app, 64, mode)
        if base_energy is None:
            base_energy = r.energy_kj
        saving = 1.0 - r.energy_kj / base_energy
        print(
            f"{mode.value:14s} {r.total_time_s:8.2f}s {r.alltoall_time_s:8.2f}s "
            f"{r.energy_kj:8.2f}kJ {saving:8.1%}"
        )


if __name__ == "__main__":
    main()
