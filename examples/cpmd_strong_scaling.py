#!/usr/bin/env python
"""CPMD strong-scaling study (paper Fig 9 + Table I).

Runs the three CPMD datasets at 32 and 64 ranks under the three power
schemes and prints execution time, alltoall time and total energy —
reproducing the paper's headline application result (~8% energy saving
on ta-inp-md at 64 processes with 2-5% slowdown).

Run:  python examples/cpmd_strong_scaling.py        (all datasets, ~3 min)
      python examples/cpmd_strong_scaling.py wat1   (one dataset)
"""

import sys

from repro.apps import CPMD_TA_INP_MD, CPMD_WAT32_INP1, CPMD_WAT32_INP2, run_app
from repro.collectives import PowerMode

DATASETS = {
    "wat1": CPMD_WAT32_INP1,
    "wat2": CPMD_WAT32_INP2,
    "ta": CPMD_TA_INP_MD,
}


def main(selected) -> None:
    apps = [DATASETS[s] for s in selected] if selected else list(DATASETS.values())
    print(
        f"{'dataset':18s} {'procs':>5s} {'scheme':>13s} "
        f"{'total':>9s} {'alltoall':>9s} {'energy':>10s}"
    )
    for app in apps:
        baseline = {}
        for n_ranks in (32, 64):
            for mode in PowerMode:
                r = run_app(app, n_ranks, mode)
                if mode is PowerMode.NONE:
                    baseline[n_ranks] = r.energy_kj
                saving = 1.0 - r.energy_kj / baseline[n_ranks]
                print(
                    f"{app.name:18s} {n_ranks:5d} {mode.value:>13s} "
                    f"{r.total_time_s:8.2f}s {r.alltoall_time_s:8.2f}s "
                    f"{r.energy_kj:8.2f}kJ"
                    + (f"  (-{saving:.1%})" if mode is not PowerMode.NONE else "")
                )
    print(
        "\nExpected shape (paper §VII-F): runtime halves from 32 to 64 ranks,"
        "\nalltoall time changes little, and the proposed scheme saves up to"
        "\n~8% energy at a 2-5% runtime cost."
    )


if __name__ == "__main__":
    unknown = [a for a in sys.argv[1:] if a not in DATASETS]
    if unknown:
        raise SystemExit(f"unknown dataset(s) {unknown}; choose from {list(DATASETS)}")
    main(sys.argv[1:])
