#!/usr/bin/env python
"""Message-size study of the power-aware alltoall (paper Figs 7a/7b).

Sweeps 16 KB - 1 MB under the three schemes, printing the latency table
and a sampled power timeline for the largest size — the two panels of
Figure 7.  Also demonstrates direct access to the power meter.

Run:  python examples/alltoall_power_study.py
"""

from repro import (
    CollectiveConfig,
    CollectiveEngine,
    MpiJob,
    PowerMeter,
    PowerMode,
)
from repro.bench import bytes_label

SIZES = (16 << 10, 64 << 10, 256 << 10, 1 << 20)


def run_once(nbytes: int, mode: PowerMode, iterations: int = 1):
    engine = CollectiveEngine(CollectiveConfig(power_mode=mode))
    job = MpiJob(64, collectives=engine)

    def program(ctx):
        for _ in range(iterations):
            yield from ctx.alltoall(nbytes)

    return job.run(program)


def latency_sweep() -> None:
    print("-- Fig 7(a): latency (us) --")
    print(f"{'size':>6s} {'no-power':>12s} {'freq-scaling':>13s} {'proposed':>12s}")
    for nbytes in SIZES:
        row = [
            run_once(nbytes, mode).duration_s * 1e6
            for mode in (PowerMode.NONE, PowerMode.DVFS, PowerMode.PROPOSED)
        ]
        print(
            f"{bytes_label(nbytes):>6s} {row[0]:12.1f} {row[1]:13.1f} {row[2]:12.1f}"
        )


def power_timeline() -> None:
    print("\n-- Fig 7(b): sampled power during an 8-iteration 1MB loop --")
    meter = PowerMeter(interval_s=0.25)
    traces = {}
    for mode in PowerMode:
        result = run_once(1 << 20, mode, iterations=8)
        traces[mode] = meter.sample(result.accountant)
    n = min(len(t) for t in traces.values())
    print(f"{'t (s)':>6s} {'no-power':>10s} {'freq':>8s} {'proposed':>10s}")
    for i in range(n):
        print(
            f"{traces[PowerMode.NONE].times_s[i]:6.2f} "
            f"{traces[PowerMode.NONE].power_kw[i]:8.2f}kW "
            f"{traces[PowerMode.DVFS].power_kw[i]:6.2f}kW "
            f"{traces[PowerMode.PROPOSED].power_kw[i]:8.2f}kW"
        )


if __name__ == "__main__":
    latency_sweep()
    power_timeline()
